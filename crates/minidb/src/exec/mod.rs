//! Execution: pull-based row iterators over the logical plan.
//!
//! The executor interprets the optimized [`LogicalPlan`] directly — each
//! node becomes a [`RowIter`]. Scans borrow table rows from the catalog
//! (no copies); blocking operators (sort, hash build, aggregation,
//! merge-join) materialize lazily on first pull.

pub mod aggregate;
pub mod basic;
pub mod join;

use crate::catalog::Catalog;
use crate::error::{DbError, DbResult};
use crate::plan::logical::{IndexCondition, JoinStrategy, LogicalPlan};
use crate::value::Row;

/// A pull-based row stream.
pub trait RowIter {
    /// The next row, or `None` when exhausted.
    fn next_row(&mut self) -> DbResult<Option<Row>>;
}

/// A boxed row stream borrowing from the catalog.
pub type BoxIter<'a> = Box<dyn RowIter + 'a>;

/// Builds an executor tree for a plan.
pub fn build<'a>(plan: &LogicalPlan, catalog: &'a Catalog) -> DbResult<BoxIter<'a>> {
    match plan {
        LogicalPlan::Scan { table, .. } => {
            let t = catalog
                .table(table)
                .ok_or_else(|| DbError::catalog(format!("table '{table}' vanished")))?;
            Ok(Box::new(basic::Scan::new(t.rows())))
        }
        LogicalPlan::IndexScan {
            table,
            column,
            condition,
            ..
        } => {
            let t = catalog
                .table(table)
                .ok_or_else(|| DbError::catalog(format!("table '{table}' vanished")))?;
            let index = t.index_on(*column).ok_or_else(|| {
                DbError::catalog(format!("index on '{table}' column {column} vanished"))
            })?;
            let mut positions: Vec<usize> = match condition {
                IndexCondition::Eq(v) => index.get(v).cloned().unwrap_or_default(),
                IndexCondition::Range { lo, hi } => index
                    .range((lo.clone(), hi.clone()))
                    .flat_map(|(_, ps)| ps.iter().copied())
                    .collect(),
            };
            // Emit in table order, keeping the executor deterministic.
            positions.sort_unstable();
            Ok(Box::new(basic::IndexScan::new(t.rows(), positions)))
        }
        LogicalPlan::Filter { input, predicate } => Ok(Box::new(basic::Filter::new(
            build(input, catalog)?,
            predicate.clone(),
        ))),
        LogicalPlan::Project { input, exprs, .. } => Ok(Box::new(basic::Project::new(
            build(input, catalog)?,
            exprs.clone(),
        ))),
        LogicalPlan::Join {
            left,
            right,
            equi,
            residual,
            strategy,
            ..
        } => {
            let l = build(left, catalog)?;
            let r = build(right, catalog)?;
            match strategy {
                JoinStrategy::Hash => Ok(Box::new(join::HashJoin::new(
                    l,
                    r,
                    equi.clone(),
                    residual.clone(),
                    left.schema().len(),
                ))),
                JoinStrategy::Merge => Ok(Box::new(join::MergeJoin::new(
                    l,
                    r,
                    equi.clone(),
                    residual.clone(),
                ))),
                JoinStrategy::NestedLoop => Ok(Box::new(join::NestedLoopJoin::new(
                    l,
                    r,
                    equi.clone(),
                    residual.clone(),
                    left.schema().len(),
                ))),
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => Ok(Box::new(aggregate::HashAggregate::new(
            build(input, catalog)?,
            group_by.clone(),
            aggs.clone(),
        ))),
        LogicalPlan::Sort { input, keys } => Ok(Box::new(basic::Sort::new(
            build(input, catalog)?,
            keys.clone(),
        ))),
        LogicalPlan::Limit { input, n } => {
            Ok(Box::new(basic::Limit::new(build(input, catalog)?, *n)))
        }
    }
}

/// Drains an executor into a row vector.
pub fn collect(mut iter: BoxIter<'_>) -> DbResult<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(row) = iter.next_row()? {
        out.push(row);
    }
    Ok(out)
}
