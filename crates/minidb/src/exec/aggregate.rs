//! Hash aggregation.
//!
//! Standard SQL semantics: `COUNT(*)` counts rows, the other aggregates
//! skip NULL inputs; `SUM`/`MIN`/`MAX` over an all-NULL (or empty) group is
//! NULL, `COUNT` is 0; with no `GROUP BY` the operator emits exactly one
//! row even for empty input.

use super::{BoxIter, RowIter};
use crate::error::{DbError, DbResult};
use crate::expr::BoundExpr;
use crate::plan::logical::AggExpr;
use crate::sql::ast::AggFunc;
use crate::value::{Row, Value};
use std::collections::HashMap;

/// Accumulator for one aggregate within one group.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    Sum(Option<Value>),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, count: i64 },
}

impl AggState {
    fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(None),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
        }
    }

    /// Feeds one value (`None` = COUNT(*) row tick).
    fn update(&mut self, v: Option<&Value>) -> DbResult<()> {
        match self {
            AggState::Count(n) => {
                // COUNT(*) counts every row; COUNT(e) skips NULLs.
                match v {
                    None => *n += 1,
                    Some(val) if !val.is_null() => *n += 1,
                    _ => {}
                }
            }
            AggState::Sum(acc) => {
                let Some(val) = v else { return Ok(()) };
                if val.is_null() {
                    return Ok(());
                }
                if !val.is_numeric() {
                    return Err(DbError::type_err(format!("SUM over non-number {val}")));
                }
                *acc = Some(match acc.take() {
                    None => val.clone(),
                    Some(Value::Int(a)) => match val {
                        Value::Int(b) => Value::Int(
                            a.checked_add(*b)
                                .ok_or_else(|| DbError::execution("SUM integer overflow"))?,
                        ),
                        other => Value::Float(a as f64 + other.as_f64().expect("numeric")),
                    },
                    Some(Value::Float(a)) => Value::Float(a + val.as_f64().expect("numeric")),
                    Some(other) => {
                        return Err(DbError::type_err(format!("SUM accumulator {other}")))
                    }
                });
            }
            AggState::Min(acc) => {
                let Some(val) = v else { return Ok(()) };
                if val.is_null() {
                    return Ok(());
                }
                match acc {
                    None => *acc = Some(val.clone()),
                    Some(cur) => {
                        if val < cur {
                            *acc = Some(val.clone());
                        }
                    }
                }
            }
            AggState::Max(acc) => {
                let Some(val) = v else { return Ok(()) };
                if val.is_null() {
                    return Ok(());
                }
                match acc {
                    None => *acc = Some(val.clone()),
                    Some(cur) => {
                        if val > cur {
                            *acc = Some(val.clone());
                        }
                    }
                }
            }
            AggState::Avg { sum, count } => {
                let Some(val) = v else { return Ok(()) };
                if val.is_null() {
                    return Ok(());
                }
                let x = val
                    .as_f64()
                    .ok_or_else(|| DbError::type_err(format!("AVG over non-number {val}")))?;
                *sum += x;
                *count += 1;
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::Sum(acc) | AggState::Min(acc) | AggState::Max(acc) => {
                acc.unwrap_or(Value::Null)
            }
            AggState::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / count as f64)
                }
            }
        }
    }
}

/// Blocking hash aggregation.
pub struct HashAggregate<'a> {
    input: Option<BoxIter<'a>>,
    group_by: Vec<BoundExpr>,
    aggs: Vec<AggExpr>,
    output: Vec<Row>,
    pos: usize,
}

impl<'a> HashAggregate<'a> {
    /// An aggregation of `input` grouped by `group_by`.
    pub fn new(input: BoxIter<'a>, group_by: Vec<BoundExpr>, aggs: Vec<AggExpr>) -> Self {
        HashAggregate {
            input: Some(input),
            group_by,
            aggs,
            output: Vec::new(),
            pos: 0,
        }
    }

    fn materialize(&mut self) -> DbResult<()> {
        let Some(mut input) = self.input.take() else {
            return Ok(());
        };
        // Group key → (first-seen order, states). Insertion order is kept so
        // output is deterministic.
        let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut states: Vec<(Vec<Value>, Vec<AggState>)> = Vec::new();
        while let Some(row) = input.next_row()? {
            let mut key = Vec::with_capacity(self.group_by.len());
            for g in &self.group_by {
                key.push(g.eval(&row)?);
            }
            let idx = match groups.get(&key) {
                Some(&i) => i,
                None => {
                    let i = states.len();
                    groups.insert(key.clone(), i);
                    states.push((
                        key.clone(),
                        self.aggs.iter().map(|a| AggState::new(a.func)).collect(),
                    ));
                    i
                }
            };
            for (a, st) in self.aggs.iter().zip(states[idx].1.iter_mut()) {
                match &a.arg {
                    None => st.update(None)?,
                    Some(e) => {
                        let v = e.eval(&row)?;
                        st.update(Some(&v))?;
                    }
                }
            }
        }
        // Global aggregate over empty input still yields one row.
        if states.is_empty() && self.group_by.is_empty() {
            states.push((
                Vec::new(),
                self.aggs.iter().map(|a| AggState::new(a.func)).collect(),
            ));
        }
        self.output = states
            .into_iter()
            .map(|(key, sts)| {
                let mut row = key;
                row.extend(sts.into_iter().map(AggState::finish));
                row
            })
            .collect();
        Ok(())
    }
}

impl RowIter for HashAggregate<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        if self.input.is_some() {
            self.materialize()?;
        }
        if self.pos >= self.output.len() {
            return Ok(None);
        }
        let row = std::mem::take(&mut self.output[self.pos]);
        self.pos += 1;
        Ok(Some(row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::basic::Scan;
    use crate::exec::collect;
    use crate::value::DataType;

    fn data() -> Vec<Row> {
        vec![
            vec![Value::Str("a".into()), Value::Int(1)],
            vec![Value::Str("a".into()), Value::Int(3)],
            vec![Value::Str("b".into()), Value::Int(5)],
            vec![Value::Str("a".into()), Value::Null],
        ]
    }

    fn col(i: usize, ty: DataType) -> BoundExpr {
        BoundExpr::Column {
            index: i,
            ty,
            name: format!("c{i}"),
        }
    }

    fn agg(func: AggFunc, arg: Option<BoundExpr>) -> AggExpr {
        AggExpr {
            func,
            arg,
            name: "agg".into(),
        }
    }

    fn run(group: Vec<BoundExpr>, aggs: Vec<AggExpr>, rows: &[Row]) -> Vec<Row> {
        let mut out = collect(Box::new(HashAggregate::new(
            Box::new(Scan::new(rows)),
            group,
            aggs,
        )))
        .unwrap();
        out.sort();
        out
    }

    #[test]
    fn grouped_count_star_and_sum() {
        let d = data();
        let out = run(
            vec![col(0, DataType::Text)],
            vec![
                agg(AggFunc::Count, None),
                agg(AggFunc::Count, Some(col(1, DataType::Int))),
                agg(AggFunc::Sum, Some(col(1, DataType::Int))),
            ],
            &d,
        );
        assert_eq!(
            out,
            vec![
                vec![
                    Value::Str("a".into()),
                    Value::Int(3), // COUNT(*) counts the NULL row
                    Value::Int(2), // COUNT(v) skips it
                    Value::Int(4), // SUM skips it
                ],
                vec![
                    Value::Str("b".into()),
                    Value::Int(1),
                    Value::Int(1),
                    Value::Int(5)
                ],
            ]
        );
    }

    #[test]
    fn min_max_avg() {
        let d = data();
        let out = run(
            vec![col(0, DataType::Text)],
            vec![
                agg(AggFunc::Min, Some(col(1, DataType::Int))),
                agg(AggFunc::Max, Some(col(1, DataType::Int))),
                agg(AggFunc::Avg, Some(col(1, DataType::Int))),
            ],
            &d,
        );
        assert_eq!(
            out[0],
            vec![
                Value::Str("a".into()),
                Value::Int(1),
                Value::Int(3),
                Value::Float(2.0),
            ]
        );
    }

    #[test]
    fn global_aggregate_over_empty_input_emits_one_row() {
        let empty: Vec<Row> = vec![];
        let out = run(
            vec![],
            vec![
                agg(AggFunc::Count, None),
                agg(AggFunc::Sum, Some(col(0, DataType::Int))),
                agg(AggFunc::Avg, Some(col(0, DataType::Int))),
            ],
            &empty,
        );
        assert_eq!(out, vec![vec![Value::Int(0), Value::Null, Value::Null]]);
    }

    #[test]
    fn grouped_aggregate_over_empty_input_emits_nothing() {
        let empty: Vec<Row> = vec![];
        let out = run(
            vec![col(0, DataType::Text)],
            vec![agg(AggFunc::Count, None)],
            &empty,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn null_group_keys_form_their_own_group() {
        let d = vec![
            vec![Value::Null, Value::Int(1)],
            vec![Value::Null, Value::Int(2)],
            vec![Value::Str("x".into()), Value::Int(3)],
        ];
        let out = run(
            vec![col(0, DataType::Text)],
            vec![agg(AggFunc::Count, None)],
            &d,
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], vec![Value::Null, Value::Int(2)]);
    }

    #[test]
    fn sum_mixes_int_and_float() {
        let d = vec![
            vec![Value::Str("a".into()), Value::Int(1)],
            vec![Value::Str("a".into()), Value::Float(0.5)],
        ];
        let out = run(
            vec![col(0, DataType::Text)],
            vec![agg(AggFunc::Sum, Some(col(1, DataType::Float)))],
            &d,
        );
        assert_eq!(out[0][1], Value::Float(1.5));
    }

    #[test]
    fn sum_over_text_errors() {
        let d = vec![vec![Value::Str("a".into()), Value::Str("x".into())]];
        let r = collect(Box::new(HashAggregate::new(
            Box::new(Scan::new(&d)),
            vec![],
            vec![agg(AggFunc::Sum, Some(col(1, DataType::Text)))],
        )));
        assert!(r.is_err());
    }
}
