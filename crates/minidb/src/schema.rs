//! Schemas: ordered, possibly-qualified column lists.
//!
//! Every operator's output carries a [`Schema`]. Columns are resolved by
//! name during binding (qualified `alias.col` or bare `col` when
//! unambiguous) and referenced by ordinal everywhere after that — execution
//! never does string lookups.

use crate::error::{DbError, DbResult};
use crate::value::DataType;
use std::fmt;

/// One output column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// The table alias qualifying this column, if any.
    pub qualifier: Option<String>,
    /// The column name.
    pub name: String,
    /// The column type.
    pub ty: DataType,
}

impl Column {
    /// An unqualified column.
    pub fn new(name: impl Into<String>, ty: DataType) -> Column {
        Column {
            qualifier: None,
            name: name.into(),
            ty,
        }
    }

    /// A qualified column.
    pub fn qualified(
        qualifier: impl Into<String>,
        name: impl Into<String>,
        ty: DataType,
    ) -> Column {
        Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
            ty,
        }
    }

    /// `true` iff this column answers to `qualifier.name` / bare `name`.
    fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self
                .qualifier
                .as_deref()
                .is_some_and(|cq| cq.eq_ignore_ascii_case(q)),
        }
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{} {}", self.name, self.ty),
            None => write!(f, "{} {}", self.name, self.ty),
        }
    }
}

/// An ordered column list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Builds from columns.
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema { columns }
    }

    /// The empty schema.
    pub fn empty() -> Schema {
        Schema {
            columns: Vec::new(),
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// `true` iff no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The column at ordinal `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Resolves `qualifier.name` (or bare `name`) to an ordinal.
    ///
    /// # Errors
    /// `Binding` if the column is unknown or (for bare names) ambiguous.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> DbResult<usize> {
        let mut hits = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.matches(qualifier, name));
        let first = hits.next();
        let second = hits.next();
        match (first, second) {
            (Some((i, _)), None) => Ok(i),
            (Some(_), Some(_)) => Err(DbError::binding(format!(
                "ambiguous column '{}'",
                display_name(qualifier, name)
            ))),
            (None, _) => Err(DbError::binding(format!(
                "unknown column '{}'",
                display_name(qualifier, name)
            ))),
        }
    }

    /// A new schema with every column re-qualified to `alias` (what a
    /// `FROM table AS alias` does).
    pub fn with_qualifier(&self, alias: &str) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| Column::qualified(alias, c.name.clone(), c.ty))
                .collect(),
        }
    }

    /// Concatenation — the output schema of a join.
    pub fn join(&self, right: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(right.columns.iter().cloned());
        Schema { columns }
    }

    /// The sub-schema formed by the given ordinals (projection).
    pub fn project(&self, ordinals: &[usize]) -> Schema {
        Schema {
            columns: ordinals.iter().map(|&i| self.columns[i].clone()).collect(),
        }
    }
}

fn display_name(qualifier: Option<&str>, name: &str) -> String {
    match qualifier {
        Some(q) => format!("{q}.{name}"),
        None => name.to_string(),
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Column::qualified("e", "id", DataType::Int),
            Column::qualified("e", "name", DataType::Text),
            Column::qualified("d", "id", DataType::Int),
            Column::qualified("d", "budget", DataType::Float),
        ])
    }

    #[test]
    fn resolve_qualified() {
        let s = sample();
        assert_eq!(s.resolve(Some("e"), "id").unwrap(), 0);
        assert_eq!(s.resolve(Some("d"), "id").unwrap(), 2);
        assert_eq!(s.resolve(Some("d"), "budget").unwrap(), 3);
    }

    #[test]
    fn resolve_bare_unambiguous() {
        let s = sample();
        assert_eq!(s.resolve(None, "name").unwrap(), 1);
        assert_eq!(s.resolve(None, "budget").unwrap(), 3);
    }

    #[test]
    fn resolve_bare_ambiguous_errors() {
        let s = sample();
        let err = s.resolve(None, "id").unwrap_err();
        assert!(matches!(err, DbError::Binding(m) if m.contains("ambiguous")));
    }

    #[test]
    fn resolve_unknown_errors() {
        let s = sample();
        assert!(matches!(
            s.resolve(None, "salary").unwrap_err(),
            DbError::Binding(m) if m.contains("unknown")
        ));
        assert!(s.resolve(Some("x"), "id").is_err());
    }

    #[test]
    fn resolution_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.resolve(Some("E"), "ID").unwrap(), 0);
        assert_eq!(s.resolve(None, "NAME").unwrap(), 1);
    }

    #[test]
    fn with_qualifier_rewrites_all() {
        let s = Schema::new(vec![Column::new("a", DataType::Int)]).with_qualifier("t");
        assert_eq!(s.resolve(Some("t"), "a").unwrap(), 0);
        assert!(s.resolve(Some("u"), "a").is_err());
    }

    #[test]
    fn join_concatenates() {
        let l = Schema::new(vec![Column::new("a", DataType::Int)]);
        let r = Schema::new(vec![Column::new("b", DataType::Text)]);
        let j = l.join(&r);
        assert_eq!(j.len(), 2);
        assert_eq!(j.resolve(None, "b").unwrap(), 1);
    }

    #[test]
    fn project_selects_ordinals() {
        let s = sample();
        let p = s.project(&[3, 0]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.column(0).name, "budget");
        assert_eq!(p.column(1).name, "id");
    }

    #[test]
    fn display_round_trips_names() {
        let s = Schema::new(vec![Column::qualified("t", "x", DataType::Float)]);
        assert_eq!(s.to_string(), "(t.x FLOAT)");
    }
}
