//! In-memory table storage with lightweight statistics.
//!
//! Tables are row vectors with type-checked inserts. Each table keeps the
//! statistics the cost model needs — row count, average row width and
//! per-column distinct estimates — updated incrementally on insert (the
//! distinct estimate is exact below a cap, then switches to a conservative
//! ratio, which is all the optimizer's selectivity heuristics require).

use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::value::{Row, Value};
use std::collections::{BTreeMap, HashSet};

/// Cap on exact distinct counting per column; beyond it we extrapolate.
const DISTINCT_CAP: usize = 10_000;

/// Per-column statistics.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Exact distinct values while below [`DISTINCT_CAP`].
    seen: HashSet<Value>,
    /// `true` once the exact set was abandoned.
    saturated: bool,
    /// NULL count.
    pub nulls: u64,
}

impl ColumnStats {
    fn new() -> ColumnStats {
        ColumnStats {
            seen: HashSet::new(),
            saturated: false,
            nulls: 0,
        }
    }

    fn observe(&mut self, v: &Value) {
        if v.is_null() {
            self.nulls += 1;
            return;
        }
        if !self.saturated {
            self.seen.insert(v.clone());
            if self.seen.len() > DISTINCT_CAP {
                self.saturated = true;
                self.seen.clear();
                self.seen.shrink_to_fit();
            }
        }
    }

    /// Estimated number of distinct non-NULL values given `row_count` rows.
    pub fn distinct_estimate(&self, row_count: u64) -> u64 {
        if self.saturated {
            // Beyond the cap assume high cardinality: half the rows.
            (row_count / 2).max(DISTINCT_CAP as u64)
        } else {
            self.seen.len() as u64
        }
    }
}

/// Table-level statistics.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Number of rows.
    pub row_count: u64,
    /// Mean serialized row width in bytes (rough, for I/O costing).
    pub avg_row_bytes: f64,
    /// Per-column stats.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    fn new(num_columns: usize) -> TableStats {
        TableStats {
            row_count: 0,
            avg_row_bytes: 0.0,
            columns: (0..num_columns).map(|_| ColumnStats::new()).collect(),
        }
    }

    fn observe(&mut self, row: &Row) {
        let bytes: usize = row
            .iter()
            .map(|v| match v {
                Value::Null | Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 8,
                Value::Str(s) => s.len() + 4,
            })
            .sum();
        let n = self.row_count as f64;
        self.avg_row_bytes = (self.avg_row_bytes * n + bytes as f64) / (n + 1.0);
        self.row_count += 1;
        for (c, v) in self.columns.iter_mut().zip(row) {
            c.observe(v);
        }
    }
}

/// A secondary index: ordered map from column value to row positions.
/// NULLs are not indexed (SQL predicates never match them).
pub type ColumnIndex = BTreeMap<Value, Vec<usize>>;

/// An in-memory table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    stats: TableStats,
    /// Secondary indexes keyed by column ordinal.
    indexes: std::collections::HashMap<usize, ColumnIndex>,
}

impl Table {
    /// An empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        let stats = TableStats::new(schema.len());
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
            stats,
            indexes: std::collections::HashMap::new(),
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The statistics.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Inserts a row after arity/type checking (INT coerces into FLOAT
    /// columns).
    pub fn insert(&mut self, row: Row) -> DbResult<()> {
        if row.len() != self.schema.len() {
            return Err(DbError::type_err(format!(
                "table '{}' expects {} values, got {}",
                self.name,
                self.schema.len(),
                row.len()
            )));
        }
        let mut coerced = Vec::with_capacity(row.len());
        for (v, col) in row.into_iter().zip(self.schema.columns()) {
            if !v.fits(col.ty) {
                return Err(DbError::type_err(format!(
                    "value {v} does not fit column '{}' of type {}",
                    col.name, col.ty
                )));
            }
            coerced.push(v.coerce(col.ty));
        }
        self.stats.observe(&coerced);
        let pos = self.rows.len();
        for (&col, index) in &mut self.indexes {
            let v = &coerced[col];
            if !v.is_null() {
                index.entry(v.clone()).or_default().push(pos);
            }
        }
        self.rows.push(coerced);
        Ok(())
    }

    /// Builds (or rebuilds) a secondary index on the column at `ordinal`.
    ///
    /// # Errors
    /// `Catalog` if the ordinal is out of range.
    pub fn create_index(&mut self, ordinal: usize) -> DbResult<()> {
        if ordinal >= self.schema.len() {
            return Err(DbError::catalog(format!(
                "table '{}' has no column ordinal {ordinal}",
                self.name
            )));
        }
        let mut index: ColumnIndex = BTreeMap::new();
        for (pos, row) in self.rows.iter().enumerate() {
            let v = &row[ordinal];
            if !v.is_null() {
                index.entry(v.clone()).or_default().push(pos);
            }
        }
        self.indexes.insert(ordinal, index);
        Ok(())
    }

    /// The secondary index on `ordinal`, if one exists.
    pub fn index_on(&self, ordinal: usize) -> Option<&ColumnIndex> {
        self.indexes.get(&ordinal)
    }

    /// Ordinals with secondary indexes.
    pub fn indexed_columns(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.indexes.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The stored rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn table() -> Table {
        Table::new(
            "t",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("score", DataType::Float),
                Column::new("tag", DataType::Text),
            ]),
        )
    }

    #[test]
    fn insert_typechecks() {
        let mut t = table();
        t.insert(vec![
            Value::Int(1),
            Value::Float(0.5),
            Value::Str("a".into()),
        ])
        .unwrap();
        assert_eq!(t.len(), 1);
        let err = t
            .insert(vec![
                Value::Str("oops".into()),
                Value::Float(0.5),
                Value::Str("a".into()),
            ])
            .unwrap_err();
        assert!(matches!(err, DbError::Type(_)));
    }

    #[test]
    fn insert_rejects_wrong_arity() {
        let mut t = table();
        assert!(matches!(
            t.insert(vec![Value::Int(1)]).unwrap_err(),
            DbError::Type(m) if m.contains("expects 3")
        ));
    }

    #[test]
    fn int_coerces_into_float_column() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::Int(2), Value::Str("x".into())])
            .unwrap();
        assert_eq!(t.rows()[0][1], Value::Float(2.0));
    }

    #[test]
    fn nulls_fit_everywhere() {
        let mut t = table();
        t.insert(vec![Value::Null, Value::Null, Value::Null])
            .unwrap();
        assert_eq!(t.stats().columns[0].nulls, 1);
    }

    #[test]
    fn stats_track_counts_and_distincts() {
        let mut t = table();
        for i in 0..100 {
            t.insert(vec![
                Value::Int(i),
                Value::Float((i % 10) as f64),
                Value::Str(format!("tag{}", i % 5)),
            ])
            .unwrap();
        }
        let s = t.stats();
        assert_eq!(s.row_count, 100);
        assert_eq!(s.columns[0].distinct_estimate(100), 100);
        assert_eq!(s.columns[1].distinct_estimate(100), 10);
        assert_eq!(s.columns[2].distinct_estimate(100), 5);
        assert!(s.avg_row_bytes > 16.0);
    }

    #[test]
    fn distinct_saturation_extrapolates() {
        let mut stats = ColumnStats::new();
        for i in 0..(DISTINCT_CAP as i64 + 10) {
            stats.observe(&Value::Int(i));
        }
        assert!(stats.saturated);
        let est = stats.distinct_estimate(1_000_000);
        assert!(est >= DISTINCT_CAP as u64);
    }
}
