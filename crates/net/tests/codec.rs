//! Codec robustness: exhaustive round-trips plus adversarial input.
//!
//! Three properties, all driven by the deterministic `DetRng` so every
//! failure is replayable from a seed:
//!
//! 1. **Round-trip**: `decode(encode(m)) == m` for randomly generated
//!    messages across every variant, including hostile-ish strings
//!    (empty, NUL bytes, multi-byte UTF-8) and extreme floats.
//! 2. **Truncation**: every strict prefix of a valid encoding decodes to
//!    a typed error — never a panic, never a bogus success.
//! 3. **Mangling**: random byte flips either decode to a typed error or
//!    to some valid message (a flip inside free-form payload bytes is
//!    legitimately undetectable without a checksum) — but never panic
//!    and never round-trip to different bytes claiming to be canonical.

use qa_net::{CodecError, WireMsg, MAX_FRAME};
use qa_simnet::rng::DetRng;

/// A deterministic, occasionally nasty string.
fn arb_string(rng: &mut DetRng) -> String {
    let pool: &[&str] = &[
        "",
        "SELECT 1",
        "SELECT v3.a, v7.b FROM v3 JOIN v7 ON v3.k = v7.k WHERE v3.a > 17",
        "nul\0byte",
        "ünïcödé — 查询 🛰",
        "quote\"back\\slash\nnewline",
    ];
    if rng.chance(0.5) {
        (*rng.pick(pool)).to_string()
    } else {
        let len = rng.int_in(0, 64) as usize;
        (0..len)
            .map(|_| char::from_u32(rng.int_in(32, 0x24F) as u32).unwrap_or('?'))
            .collect()
    }
}

/// A deterministic float including the weird-but-encodable corners.
fn arb_f64(rng: &mut DetRng) -> f64 {
    match rng.int_in(0, 5) {
        0 => 0.0,
        1 => -0.0,
        2 => f64::MAX,
        3 => f64::MIN_POSITIVE,
        4 => rng.float_in(-1e9, 1e9),
        _ => rng.float_in(0.0, 1000.0),
    }
}

/// One random message covering every variant uniformly.
fn arb_msg(rng: &mut DetRng) -> WireMsg {
    match rng.int_in(0, 14) {
        0 => WireMsg::Hello {
            node: rng.next_u32(),
        },
        1 => WireMsg::HelloAck {
            node: rng.next_u32(),
        },
        2 => WireMsg::Ping {
            nonce: rng.next_u64(),
        },
        3 => WireMsg::Pong {
            nonce: rng.next_u64(),
        },
        4 => WireMsg::Estimate {
            token: rng.next_u64(),
            sql: arb_string(rng),
        },
        5 => WireMsg::EstimateReply {
            token: rng.next_u64(),
            node: rng.next_u32(),
            exec_ms: arb_f64(rng),
        },
        6 => WireMsg::CallForOffers {
            token: rng.next_u64(),
            class: rng.next_u32(),
            sql: arb_string(rng),
        },
        7 => WireMsg::OfferReply {
            token: rng.next_u64(),
            node: rng.next_u32(),
            offered: rng.chance(0.5),
            completion_ms: arb_f64(rng),
        },
        8 => WireMsg::Execute {
            token: rng.next_u64(),
            class: rng.next_u32(),
            sql: arb_string(rng),
        },
        9 => WireMsg::ExecReply {
            token: rng.next_u64(),
            node: rng.next_u32(),
            rows: rng.next_u64(),
            exec_ms: arb_f64(rng),
            error: if rng.chance(0.3) {
                Some(arb_string(rng))
            } else {
                None
            },
        },
        10 => WireMsg::PeriodTick,
        11 => WireMsg::DumpPrices {
            token: rng.next_u64(),
        },
        12 => WireMsg::Prices {
            token: rng.next_u64(),
            node: rng.next_u32(),
            prices: {
                let n = rng.int_in(0, 32) as usize;
                (0..n).map(|_| arb_f64(rng)).collect()
            },
        },
        13 => WireMsg::Shutdown,
        _ => WireMsg::PeriodTick,
    }
}

#[test]
fn round_trip_property_all_variants() {
    let mut rng = DetRng::seed_from_u64(0x5eed_c0dec);
    for i in 0..4000 {
        let msg = arb_msg(&mut rng);
        let bytes = msg.encode();
        assert!(
            bytes.len() as u64 <= MAX_FRAME as u64,
            "iteration {i}: encoding exceeds frame cap"
        );
        let back = WireMsg::decode(&bytes)
            .unwrap_or_else(|e| panic!("iteration {i}: {msg:?} failed to decode: {e}"));
        assert_eq!(back, msg, "iteration {i}: round trip must be lossless");
        // Canonical form: re-encoding the decoded value is byte-identical.
        assert_eq!(back.encode(), bytes, "iteration {i}: encoding is canonical");
    }
}

#[test]
fn every_truncation_is_a_typed_error() {
    let mut rng = DetRng::seed_from_u64(0x7c47_0001);
    for _ in 0..400 {
        let msg = arb_msg(&mut rng);
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            let err = WireMsg::decode(&bytes[..cut]).expect_err("strict prefix must not decode");
            assert!(
                matches!(
                    err,
                    CodecError::Truncated { .. } | CodecError::BadValue { .. }
                ),
                "truncation at {cut}/{} of {msg:?} gave unexpected error {err:?}",
                bytes.len()
            );
        }
    }
}

#[test]
fn random_byte_flips_never_panic_and_never_break_canonical_form() {
    let mut rng = DetRng::seed_from_u64(0xf1b_f1b);
    for _ in 0..2000 {
        let msg = arb_msg(&mut rng);
        let mut bytes = msg.encode();
        let pos = rng.index(bytes.len());
        let bit = 1u8 << rng.int_in(0, 7);
        bytes[pos] ^= bit;
        // A flip in payload data can be undetectable (typed rejection is
        // always acceptable); what decoded must still be a well-formed
        // message that encodes back to exactly the mangled bytes (no
        // silent normalisation).
        if let Ok(decoded) = WireMsg::decode(&bytes) {
            assert_eq!(
                decoded.encode(),
                bytes,
                "accepted mangled input must be canonical ({msg:?}, pos {pos})"
            );
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = DetRng::seed_from_u64(0xdead_beef);
    for _ in 0..2000 {
        let len = rng.int_in(0, 256) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.int_in(0, 255) as u8).collect();
        // Any result is fine; the property is "no panic, no hang".
        let _ = WireMsg::decode(&bytes);
    }
}

#[test]
fn length_fields_cannot_trigger_oversized_allocation() {
    // A Prices message whose count field claims u32::MAX entries: the
    // decoder must reject it from the remaining-bytes bound, not try to
    // allocate 32 GiB.
    let mut bytes = WireMsg::Prices {
        token: 1,
        node: 2,
        prices: vec![1.0, 2.0],
    }
    .encode();
    // Layout: tag, token u64, node u32, count u32, then floats. Overwrite
    // the count (offset 1 + 8 + 4 = 13).
    bytes[13..17].copy_from_slice(&u32::MAX.to_le_bytes());
    let err = WireMsg::decode(&bytes).expect_err("bogus count must fail");
    assert!(matches!(err, CodecError::Truncated { .. }), "got {err:?}");
}
