//! A per-peer TCP connection with dedicated IO threads.
//!
//! A [`Connection`] owns one handshaken socket and two threads:
//!
//! * the **reader** decodes incoming frames, answers `Ping`s, and hands
//!   every protocol message to the consumer over an mpsc channel — when
//!   the connection dies the channel disconnects, which is exactly the
//!   signal the loss-tolerant cluster driver already understands;
//! * the **writer** drains the outgoing send queue, and doubles as the
//!   keepalive: when the queue stays idle for one heartbeat interval it
//!   sends a `Ping`, and when nothing at all has arrived from the peer
//!   within the idle deadline it declares the peer dead and tears the
//!   socket down (which also unblocks the reader).
//!
//! Dialing retries with the same capped exponential backoff the cluster
//! driver uses for allocation attempts (base × 2^attempt, capped at 8×),
//! emitting a `connect_retried` telemetry event per failed attempt.
//! Liveness transitions emit `peer_connected` / `handshake_completed` /
//! `peer_died`; undecodable frames emit `frame_dropped` before the
//! (unrecoverable — TCP has no resync point) teardown.
//!
//! When the telemetry handle carries a metrics registry, every
//! connection also feeds the process-wide `net.*` transport counters
//! (frames/bytes in and out, dropped frames, dial retries, heartbeats
//! sent, heartbeat misses) — the transport family of the fleet stats
//! scrape. Counter handles are resolved once at handshake/dial time, so
//! the steady-state cost is one atomic add per frame.

use crate::frame::{read_frame, recv_msg, send_msg, write_frame, MAX_FRAME, PROTOCOL_VERSION};
use crate::wire::{NetError, WireMsg};
use qa_simnet::telemetry::{Counter, Telemetry, TelemetryEvent};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Capped exponential backoff between connection attempts: `base`
/// doubling per attempt, never more than eight times `base` — the same
/// semantics as the cluster driver's allocation backoff.
pub fn backoff(base: Duration, attempt: u32) -> Duration {
    let factor = 1u32 << attempt.min(3);
    base.saturating_mul(factor)
}

/// Connection tuning knobs.
#[derive(Debug, Clone)]
pub struct ConnConfig {
    /// Send a `Ping` after this much outgoing-queue idleness.
    pub heartbeat: Duration,
    /// Declare the peer dead when no frame (data or pong) has arrived
    /// for this long.
    pub idle_timeout: Duration,
    /// Socket read/write deadline during the handshake only.
    pub handshake_timeout: Duration,
    /// Maximum accepted frame payload.
    pub max_frame: u32,
    /// Total dial attempts before [`NetError::ConnectFailed`] (≥ 1).
    pub connect_attempts: u32,
    /// Backoff base between dial attempts.
    pub backoff_base: Duration,
    /// Wall-clock origin for telemetry timestamps (share the driver's
    /// epoch so transport events interleave correctly with market
    /// events).
    pub epoch: Instant,
}

impl Default for ConnConfig {
    fn default() -> ConnConfig {
        ConnConfig {
            heartbeat: Duration::from_millis(250),
            idle_timeout: Duration::from_secs(15),
            handshake_timeout: Duration::from_secs(5),
            max_frame: MAX_FRAME,
            connect_attempts: 5,
            backoff_base: Duration::from_millis(20),
            epoch: Instant::now(),
        }
    }
}

/// Process-wide `net.*` transport counters, resolved from the telemetry
/// registry once per connection. `None` when telemetry is disabled — the
/// hot paths then pay a single branch, exactly like `Telemetry::emit`.
struct NetCounters {
    frames_sent: Counter,
    frames_received: Counter,
    frames_dropped: Counter,
    bytes_sent: Counter,
    bytes_received: Counter,
    heartbeats_sent: Counter,
    heartbeat_misses: Counter,
}

impl NetCounters {
    fn resolve(telemetry: &Telemetry) -> Option<NetCounters> {
        let reg = telemetry.registry()?;
        Some(NetCounters {
            frames_sent: reg.counter("net.frames_sent"),
            frames_received: reg.counter("net.frames_received"),
            frames_dropped: reg.counter("net.frames_dropped"),
            bytes_sent: reg.counter("net.bytes_sent"),
            bytes_received: reg.counter("net.bytes_received"),
            heartbeats_sent: reg.counter("net.heartbeats_sent"),
            heartbeat_misses: reg.counter("net.heartbeat_misses"),
        })
    }
}

/// State shared between the connection handle and its IO threads.
struct ConnState {
    alive: AtomicBool,
    /// Set by a deliberate [`Connection::close`]; suppresses the
    /// `peer_died` event for the EOF we caused ourselves.
    closing: AtomicBool,
    /// Microseconds-since-epoch of the last frame received.
    last_seen_us: AtomicU64,
    epoch: Instant,
    stream: TcpStream,
    telemetry: Telemetry,
    peer_node: u32,
    peer_addr: SocketAddr,
    idle_timeout: Duration,
    counters: Option<NetCounters>,
}

impl ConnState {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn emit(&self, build: impl FnOnce() -> TelemetryEvent) {
        if self.telemetry.is_enabled() {
            self.telemetry.set_now_us(self.now_us());
        }
        self.telemetry.emit(build);
    }

    fn touch(&self) {
        self.last_seen_us
            .fetch_max(self.now_us(), Ordering::Relaxed);
    }

    fn idle_exceeded(&self) -> bool {
        let seen = self.last_seen_us.load(Ordering::Relaxed);
        self.now_us().saturating_sub(seen) > self.idle_timeout.as_micros() as u64
    }

    /// Marks the connection dead exactly once: tears the socket down
    /// (unblocking both threads) and emits `peer_died` unless this was a
    /// deliberate local close.
    fn mark_dead(&self, reason: &str) {
        if self.alive.swap(false, Ordering::SeqCst) {
            if self.closing.load(Ordering::SeqCst) {
                // Deliberate local close: close_inner owns the teardown
                // sequence (drain writer first, then shut the socket), so
                // neither a premature shutdown nor a peer_died is wanted.
                return;
            }
            let _ = self.stream.shutdown(Shutdown::Both);
            let node = self.peer_node;
            let reason = reason.to_string();
            self.emit(|| TelemetryEvent::PeerDied { node, reason });
        }
    }
}

/// A live, handshaken peer connection. Incoming protocol messages arrive
/// on the [`Receiver`] returned by [`Connection::dial`] /
/// [`Connection::accept`]; heartbeats are invisible to the consumer.
pub struct Connection {
    state: Arc<ConnState>,
    out: Option<Sender<WireMsg>>,
    reader: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("peer_node", &self.state.peer_node)
            .field("peer_addr", &self.state.peer_addr)
            .field("alive", &self.is_alive())
            .finish()
    }
}

impl Connection {
    /// Dials `addr`, retrying with capped exponential backoff, and runs
    /// the dialer side of the handshake (`Hello` → `HelloAck`).
    ///
    /// `my_node` is announced to the peer
    /// ([`CLIENT_NODE`](crate::wire::CLIENT_NODE) for drivers);
    /// `expect_node` is the fleet id we believe lives at `addr` — used to
    /// label telemetry and, unless it is `u32::MAX`, verified against the
    /// `HelloAck`.
    ///
    /// # Errors
    /// [`NetError::ConnectFailed`] when every attempt failed;
    /// [`NetError::Handshake`] / [`NetError::Codec`] when a socket was
    /// established but the peer did not complete a valid handshake.
    pub fn dial(
        addr: &str,
        my_node: u32,
        expect_node: u32,
        cfg: &ConnConfig,
        telemetry: &Telemetry,
    ) -> Result<(Connection, Receiver<WireMsg>), NetError> {
        let attempts = cfg.connect_attempts.max(1);
        let mut last_err = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                let delay = backoff(cfg.backoff_base, attempt - 1);
                if let Some(reg) = telemetry.registry() {
                    reg.counter("net.dial_retries").incr();
                }
                if telemetry.is_enabled() {
                    telemetry.set_now_us(cfg.epoch.elapsed().as_micros() as u64);
                }
                telemetry.emit(|| TelemetryEvent::ConnectRetried {
                    node: expect_node,
                    attempt,
                    delay_ms: delay.as_millis() as u64,
                });
                std::thread::sleep(delay);
            }
            let stream = match connect_once(addr, cfg.handshake_timeout) {
                Ok(s) => s,
                Err(e) => {
                    last_err = e.to_string();
                    continue;
                }
            };
            // Handshake failures are not retried: the peer is reachable
            // but speaks the wrong protocol — backoff will not fix that.
            return handshake(
                stream,
                HandshakeRole::Dialer,
                my_node,
                expect_node,
                cfg,
                telemetry,
            );
        }
        Err(NetError::ConnectFailed {
            addr: addr.to_string(),
            attempts,
            detail: last_err,
        })
    }

    /// Runs the listener side of the handshake on an accepted socket and
    /// wraps it. Returns the connection and the incoming-message channel;
    /// the dialer's announced node id is available as
    /// [`Connection::peer_node`].
    pub fn accept(
        stream: TcpStream,
        my_node: u32,
        cfg: &ConnConfig,
        telemetry: &Telemetry,
    ) -> Result<(Connection, Receiver<WireMsg>), NetError> {
        handshake(
            stream,
            HandshakeRole::Listener,
            my_node,
            u32::MAX,
            cfg,
            telemetry,
        )
    }

    /// Enqueues one message for sending.
    ///
    /// # Errors
    /// [`NetError::PeerClosed`] when the connection is already dead.
    pub fn send(&self, msg: WireMsg) -> Result<(), NetError> {
        if !self.is_alive() {
            return Err(NetError::PeerClosed);
        }
        match &self.out {
            Some(out) => out.send(msg).map_err(|_| NetError::PeerClosed),
            None => Err(NetError::PeerClosed),
        }
    }

    /// `false` once the peer died or the connection was closed.
    pub fn is_alive(&self) -> bool {
        self.state.alive.load(Ordering::SeqCst)
    }

    /// The peer's node id (from its handshake).
    pub fn peer_node(&self) -> u32 {
        self.state.peer_node
    }

    /// The peer's socket address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.state.peer_addr
    }

    /// Gracefully closes: flushes every queued outgoing frame, then tears
    /// the socket down and joins both IO threads. Quiet — no `peer_died`
    /// is emitted for a deliberate close.
    pub fn close(mut self) {
        self.close_inner();
    }

    fn close_inner(&mut self) {
        self.state.closing.store(true, Ordering::SeqCst);
        // Unblock the reader so it releases its queue sender; the writer
        // then drains whatever is still queued and exits.
        let _ = self.state.stream.shutdown(Shutdown::Read);
        drop(self.out.take());
        if let Some(w) = self.writer.take() {
            let _ = w.join();
        }
        self.state.alive.store(false, Ordering::SeqCst);
        let _ = self.state.stream.shutdown(Shutdown::Both);
        if let Some(r) = self.reader.take() {
            let _ = r.join();
        }
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        if self.writer.is_some() || self.reader.is_some() {
            self.close_inner();
        }
    }
}

/// Resolves and connects one attempt, with the handshake deadline as the
/// connect timeout.
fn connect_once(addr: &str, timeout: Duration) -> Result<TcpStream, NetError> {
    let resolved = addr
        .to_socket_addrs()
        .map_err(|e| NetError::io("resolve", &e))?
        .next()
        .ok_or_else(|| NetError::Io {
            op: "resolve",
            detail: format!("{addr}: no addresses"),
        })?;
    TcpStream::connect_timeout(&resolved, timeout).map_err(|e| NetError::io("connect", &e))
}

enum HandshakeRole {
    Dialer,
    Listener,
}

/// Completes the handshake and spawns the IO threads.
fn handshake(
    stream: TcpStream,
    role: HandshakeRole,
    my_node: u32,
    expect_node: u32,
    cfg: &ConnConfig,
    telemetry: &Telemetry,
) -> Result<(Connection, Receiver<WireMsg>), NetError> {
    let peer_addr = stream
        .peer_addr()
        .map_err(|e| NetError::io("peer_addr", &e))?;
    stream
        .set_read_timeout(Some(cfg.handshake_timeout))
        .map_err(|e| NetError::io("set handshake timeout", &e))?;
    stream
        .set_write_timeout(Some(cfg.handshake_timeout))
        .map_err(|e| NetError::io("set handshake timeout", &e))?;
    let mut hs = stream
        .try_clone()
        .map_err(|e| NetError::io("clone stream", &e))?;

    let peer_node = match role {
        HandshakeRole::Dialer => {
            send_msg(&mut hs, &WireMsg::Hello { node: my_node })?;
            match recv_msg(&mut hs, cfg.max_frame)? {
                WireMsg::HelloAck { node } => {
                    if expect_node != u32::MAX && node != expect_node {
                        return Err(NetError::Handshake {
                            reason: format!(
                                "peer at {peer_addr} is node {node}, expected {expect_node}"
                            ),
                        });
                    }
                    node
                }
                other => {
                    return Err(NetError::Handshake {
                        reason: format!("expected hello_ack, got {}", other.kind()),
                    })
                }
            }
        }
        HandshakeRole::Listener => match recv_msg(&mut hs, cfg.max_frame)? {
            WireMsg::Hello { node } => {
                send_msg(&mut hs, &WireMsg::HelloAck { node: my_node })?;
                node
            }
            other => {
                return Err(NetError::Handshake {
                    reason: format!("expected hello, got {}", other.kind()),
                })
            }
        },
    };

    // Steady state: reads block indefinitely (the writer's idle deadline
    // is the liveness authority), writes keep a generous deadline so a
    // peer that stops draining cannot wedge the writer forever.
    stream
        .set_read_timeout(None)
        .map_err(|e| NetError::io("clear read timeout", &e))?;
    stream
        .set_nodelay(true)
        .map_err(|e| NetError::io("set nodelay", &e))?;

    let state = Arc::new(ConnState {
        alive: AtomicBool::new(true),
        closing: AtomicBool::new(false),
        last_seen_us: AtomicU64::new(cfg.epoch.elapsed().as_micros() as u64),
        epoch: cfg.epoch,
        stream,
        telemetry: telemetry.clone(),
        peer_node,
        peer_addr,
        idle_timeout: cfg.idle_timeout,
        counters: NetCounters::resolve(telemetry),
    });
    state.emit(|| TelemetryEvent::PeerConnected {
        node: peer_node,
        addr: peer_addr.to_string(),
    });
    state.emit(|| TelemetryEvent::HandshakeCompleted {
        node: peer_node,
        version: PROTOCOL_VERSION as u32,
    });

    let (out_tx, out_rx) = channel::<WireMsg>();
    let (in_tx, in_rx) = channel::<WireMsg>();

    let reader = {
        let state = Arc::clone(&state);
        let out_tx = out_tx.clone();
        let read_stream = state
            .stream
            .try_clone()
            .map_err(|e| NetError::io("clone stream", &e))?;
        let max_frame = cfg.max_frame;
        std::thread::Builder::new()
            .name(format!("qa-net-read-{peer_node}"))
            .spawn(move || reader_loop(state, read_stream, out_tx, in_tx, max_frame))
            .map_err(|e| NetError::io("spawn reader", &e))?
    };
    let writer = {
        let state = Arc::clone(&state);
        let write_stream = state
            .stream
            .try_clone()
            .map_err(|e| NetError::io("clone stream", &e))?;
        let heartbeat = cfg.heartbeat;
        std::thread::Builder::new()
            .name(format!("qa-net-write-{peer_node}"))
            .spawn(move || writer_loop(state, write_stream, out_rx, heartbeat))
            .map_err(|e| NetError::io("spawn writer", &e))?
    };

    Ok((
        Connection {
            state,
            out: Some(out_tx),
            reader: Some(reader),
            writer: Some(writer),
        },
        in_rx,
    ))
}

fn reader_loop(
    state: Arc<ConnState>,
    mut stream: impl Read,
    out_tx: Sender<WireMsg>,
    in_tx: Sender<WireMsg>,
    max_frame: u32,
) {
    loop {
        // Read the raw frame first so byte/frame counters see the wire
        // size; decode is a separate step (its errors count as drops).
        let decoded = read_frame(&mut stream, max_frame).map(|payload| {
            if let Some(c) = &state.counters {
                c.frames_received.incr();
                c.bytes_received.add(payload.len() as u64 + 4);
            }
            WireMsg::decode(&payload).map_err(NetError::Codec)
        });
        match decoded {
            Ok(Ok(WireMsg::Ping { nonce })) => {
                state.touch();
                if out_tx.send(WireMsg::Pong { nonce }).is_err() {
                    break;
                }
            }
            Ok(Ok(WireMsg::Pong { .. })) => state.touch(),
            Ok(Ok(msg)) => {
                state.touch();
                if in_tx.send(msg).is_err() {
                    // Consumer hung up; nothing left to read for.
                    state.mark_dead("receiver dropped");
                    break;
                }
            }
            Err(NetError::PeerClosed) => {
                state.mark_dead("peer closed connection");
                break;
            }
            Ok(Err(NetError::Codec(e))) | Err(NetError::Codec(e)) => {
                // A desynced TCP stream has no resync point: record the
                // bad frame, then the connection is unrecoverable.
                if let Some(c) = &state.counters {
                    c.frames_dropped.incr();
                }
                let node = state.peer_node;
                let context = e.to_string();
                state.emit(|| TelemetryEvent::FrameDropped { node, context });
                state.mark_dead(&format!("codec desync: {e}"));
                break;
            }
            Ok(Err(e)) | Err(e) => {
                state.mark_dead(&e.to_string());
                break;
            }
        }
    }
    // in_tx drops here: the consumer's channel disconnects.
}

fn writer_loop(
    state: Arc<ConnState>,
    mut stream: impl Write,
    out_rx: Receiver<WireMsg>,
    heartbeat: Duration,
) {
    let mut nonce = 0u64;
    // Encode-then-write (instead of `send_msg`) so the counters see the
    // framed wire size.
    let put = |mut stream: &mut dyn Write, msg: &WireMsg| -> Result<(), NetError> {
        let payload = msg.encode();
        write_frame(&mut stream, &payload)?;
        if let Some(c) = &state.counters {
            c.frames_sent.incr();
            c.bytes_sent.add(payload.len() as u64 + 4);
        }
        Ok(())
    };
    loop {
        match out_rx.recv_timeout(heartbeat) {
            Ok(msg) => {
                if let Err(e) = put(&mut stream, &msg) {
                    state.mark_dead(&e.to_string());
                    break;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if !state.alive.load(Ordering::SeqCst) {
                    break;
                }
                if state.idle_exceeded() {
                    if let Some(c) = &state.counters {
                        c.heartbeat_misses.incr();
                    }
                    state.mark_dead("heartbeat timeout");
                    break;
                }
                nonce += 1;
                if let Some(c) = &state.counters {
                    c.heartbeats_sent.incr();
                }
                if let Err(e) = put(&mut stream, &WireMsg::Ping { nonce }) {
                    state.mark_dead(&e.to_string());
                    break;
                }
            }
            // Every sender is gone and the queue is drained: graceful
            // close, flushed.
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::CLIENT_NODE;
    use std::net::TcpListener;

    fn fast_cfg() -> ConnConfig {
        ConnConfig {
            heartbeat: Duration::from_millis(20),
            idle_timeout: Duration::from_millis(400),
            handshake_timeout: Duration::from_secs(5),
            connect_attempts: 3,
            backoff_base: Duration::from_millis(10),
            ..ConnConfig::default()
        }
    }

    /// Accepts one connection as fleet node `node` on its own thread.
    fn accept_one(
        listener: TcpListener,
        node: u32,
    ) -> std::thread::JoinHandle<(Connection, Receiver<WireMsg>)> {
        std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            Connection::accept(stream, node, &fast_cfg(), &Telemetry::disabled())
                .expect("handshake")
        })
    }

    #[test]
    fn loopback_pair_exchanges_messages_both_ways() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = accept_one(listener, 4);

        let (client, client_rx) =
            Connection::dial(&addr, CLIENT_NODE, 4, &fast_cfg(), &Telemetry::disabled()).unwrap();
        let (server_conn, server_rx) = server.join().unwrap();
        assert_eq!(client.peer_node(), 4);
        assert_eq!(server_conn.peer_node(), CLIENT_NODE);

        client
            .send(WireMsg::Estimate {
                token: 1,
                sql: "SELECT 1".into(),
            })
            .unwrap();
        let got = server_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(
            got,
            WireMsg::Estimate {
                token: 1,
                sql: "SELECT 1".into()
            }
        );
        server_conn
            .send(WireMsg::EstimateReply {
                token: 1,
                node: 4,
                exec_ms: 2.5,
            })
            .unwrap();
        let reply = client_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(
            reply,
            WireMsg::EstimateReply {
                token: 1,
                node: 4,
                exec_ms: 2.5
            }
        );
        client.close();
        server_conn.close();
    }

    #[test]
    fn heartbeats_keep_an_idle_connection_alive() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = accept_one(listener, 1);
        let (client, _client_rx) =
            Connection::dial(&addr, CLIENT_NODE, 1, &fast_cfg(), &Telemetry::disabled()).unwrap();
        let (server_conn, _server_rx) = server.join().unwrap();
        // Much longer than the idle deadline; only ping/pong traffic flows.
        std::thread::sleep(Duration::from_millis(900));
        assert!(client.is_alive(), "pings must keep the client alive");
        assert!(server_conn.is_alive(), "pings must keep the server alive");
        client.close();
        server_conn.close();
    }

    #[test]
    fn queued_messages_flush_before_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = accept_one(listener, 2);
        let (client, _client_rx) =
            Connection::dial(&addr, CLIENT_NODE, 2, &fast_cfg(), &Telemetry::disabled()).unwrap();
        let (server_conn, server_rx) = server.join().unwrap();
        for token in 0..100 {
            client
                .send(WireMsg::DumpPrices { token })
                .expect("queue while alive");
        }
        client.close();
        let mut got = 0;
        while let Ok(msg) = server_rx.recv_timeout(Duration::from_secs(5)) {
            assert_eq!(msg, WireMsg::DumpPrices { token: got });
            got += 1;
            if got == 100 {
                break;
            }
        }
        assert_eq!(got, 100, "graceful close must flush the queue");
        server_conn.close();
    }

    #[test]
    fn unreachable_peer_fails_with_retries_and_telemetry() {
        // Bind, learn the port, drop the listener: nothing listens there.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let (telemetry, buffer) = Telemetry::buffered();
        let started = Instant::now();
        let err = match Connection::dial(&addr, CLIENT_NODE, 9, &fast_cfg(), &telemetry) {
            Err(e) => e,
            Ok(_) => panic!("dial must fail with no listener"),
        };
        match err {
            NetError::ConnectFailed { attempts, .. } => assert_eq!(attempts, 3),
            other => panic!("expected ConnectFailed, got {other:?}"),
        }
        // Two retries after the first failure, with 10 ms then 20 ms
        // backoff.
        let retries: Vec<_> = buffer
            .records()
            .iter()
            .filter_map(|r| match &r.event {
                TelemetryEvent::ConnectRetried {
                    node,
                    attempt,
                    delay_ms,
                } => Some((*node, *attempt, *delay_ms)),
                _ => None,
            })
            .collect();
        assert_eq!(retries, vec![(9, 1, 10), (9, 2, 20)]);
        assert!(started.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn silent_peer_is_declared_dead() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // A "peer" that completes the handshake by hand and then goes
        // silent: never reads, never writes, never pongs.
        let zombie = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let hello = recv_msg(&mut stream, MAX_FRAME).unwrap();
            assert!(matches!(hello, WireMsg::Hello { .. }));
            send_msg(&mut stream, &WireMsg::HelloAck { node: 6 }).unwrap();
            // Hold the socket open without servicing it.
            std::thread::sleep(Duration::from_secs(3));
            drop(stream);
        });
        let (telemetry, buffer) = Telemetry::buffered();
        let (client, client_rx) =
            Connection::dial(&addr, CLIENT_NODE, 6, &fast_cfg(), &telemetry).unwrap();
        // The idle deadline (400 ms) must fire long before the zombie
        // releases the socket.
        let deadline = Instant::now() + Duration::from_secs(2);
        while client.is_alive() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(!client.is_alive(), "idle deadline must declare peer dead");
        assert!(
            matches!(
                client_rx.recv_timeout(Duration::from_secs(2)),
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected)
            ),
            "death must disconnect the incoming channel"
        );
        assert!(
            buffer
                .records()
                .iter()
                .any(|r| matches!(&r.event, TelemetryEvent::PeerDied { node: 6, .. })),
            "peer_died must be emitted"
        );
        assert!(
            client.send(WireMsg::PeriodTick).is_err(),
            "sends must fail once dead"
        );
        drop(client);
        zombie.join().unwrap();
    }

    #[test]
    fn transport_counters_feed_the_registry() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let (server_tel, _buf) = Telemetry::buffered();
        let server = {
            let tel = server_tel.clone();
            std::thread::spawn(move || {
                let (stream, _) = listener.accept().expect("accept");
                Connection::accept(stream, 5, &fast_cfg(), &tel).expect("handshake")
            })
        };
        let client_tel = Telemetry::metrics_only();
        let (client, client_rx) =
            Connection::dial(&addr, CLIENT_NODE, 5, &fast_cfg(), &client_tel).unwrap();
        let (server_conn, server_rx) = server.join().unwrap();

        client.send(WireMsg::StatsRequest { token: 1 }).unwrap();
        let got = server_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got, WireMsg::StatsRequest { token: 1 });
        server_conn
            .send(WireMsg::StatsReply {
                token: 1,
                node: 5,
                json: "{}".into(),
            })
            .unwrap();
        client_rx.recv_timeout(Duration::from_secs(5)).unwrap();

        let creg = client_tel.registry().unwrap();
        assert!(creg.counter("net.frames_sent").get() >= 1);
        assert!(creg.counter("net.frames_received").get() >= 1);
        // Framed wire size: payload + 4-byte length prefix per frame.
        assert!(creg.counter("net.bytes_sent").get() >= 13);
        assert!(creg.counter("net.bytes_received").get() >= 13);
        let sreg = server_tel.registry().unwrap();
        assert!(sreg.counter("net.frames_received").get() >= 1);
        assert!(sreg.counter("net.frames_sent").get() >= 1);
        client.close();
        server_conn.close();
    }

    #[test]
    fn dial_retries_and_heartbeat_misses_are_counted() {
        // Nothing listens: every attempt fails, two retries are counted.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let tel = Telemetry::metrics_only();
        assert!(Connection::dial(&addr, CLIENT_NODE, 9, &fast_cfg(), &tel).is_err());
        let reg = tel.registry().unwrap();
        assert_eq!(reg.counter("net.dial_retries").get(), 2);

        // A zombie peer that never pongs: the idle deadline fires and the
        // miss is counted, along with the heartbeats we sent chasing it.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let zombie = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            recv_msg(&mut stream, MAX_FRAME).unwrap();
            send_msg(&mut stream, &WireMsg::HelloAck { node: 9 }).unwrap();
            std::thread::sleep(Duration::from_secs(2));
            drop(stream);
        });
        let (client, _rx) = Connection::dial(&addr, CLIENT_NODE, 9, &fast_cfg(), &tel).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        while client.is_alive() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(!client.is_alive());
        assert_eq!(reg.counter("net.heartbeat_misses").get(), 1);
        assert!(reg.counter("net.heartbeats_sent").get() >= 1);
        drop(client);
        zombie.join().unwrap();
    }

    #[test]
    fn backoff_caps_at_eight_times_base() {
        let base = Duration::from_millis(10);
        assert_eq!(backoff(base, 0), base);
        assert_eq!(backoff(base, 1), base * 2);
        assert_eq!(backoff(base, 3), base * 8);
        assert_eq!(backoff(base, 31), base * 8);
    }
}
