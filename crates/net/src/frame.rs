//! Length-prefixed frames and the connection handshake.
//!
//! The stream format is `[len: u32 LE][payload: len bytes]` repeated; a
//! payload is one [`WireMsg`](crate::wire::WireMsg) encoding. The reader
//! validates the prefix against a hard cap **before** allocating, so a
//! mangled or hostile prefix costs four bytes of reading, not gigabytes
//! of memory.
//!
//! The handshake is the first frame in each direction: the dialer sends
//! [`WireMsg::Hello`](crate::wire::WireMsg::Hello) (magic + version +
//! node id), the listener answers with `HelloAck`. Magic and version are
//! validated by the codec itself, so a peer speaking a different protocol
//! or version surfaces as a typed [`CodecError`](crate::wire::CodecError)
//! rather than garbage.

use crate::wire::{CodecError, NetError, WireMsg};
use std::io::{Read, Write};

/// Handshake magic: the first four payload bytes of a `Hello`.
pub const MAGIC: [u8; 4] = *b"QANT";

/// The protocol version this build speaks. Bump on any wire change.
/// v2: added `StatsRequest`/`StatsReply` (fleet metrics scrape).
pub const PROTOCOL_VERSION: u16 = 2;

/// Hard cap on one frame's payload (1 MiB — generous for SQL text, tiny
/// against a hostile length prefix).
pub const MAX_FRAME: u32 = 1 << 20;

/// Writes one frame (length prefix + payload) and flushes.
///
/// # Errors
/// [`NetError::Codec`] when the payload exceeds [`MAX_FRAME`] (programmer
/// error upstream, but never silently truncated), [`NetError::Io`] on a
/// socket failure.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), NetError> {
    if payload.len() as u64 > MAX_FRAME as u64 {
        return Err(CodecError::FrameTooLarge {
            len: payload.len() as u64,
            max: MAX_FRAME,
        }
        .into());
    }
    let len = (payload.len() as u32).to_le_bytes();
    w.write_all(&len)
        .and_then(|_| w.write_all(payload))
        .and_then(|_| w.flush())
        .map_err(|e| NetError::io("write frame", &e))
}

/// Reads one frame payload, enforcing `max` before any allocation.
///
/// # Errors
/// [`NetError::PeerClosed`] on clean EOF at a frame boundary,
/// [`NetError::Codec`] for an oversized prefix or mid-frame EOF,
/// [`NetError::Io`] on a socket failure.
pub fn read_frame(r: &mut impl Read, max: u32) -> Result<Vec<u8>, NetError> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Err(NetError::PeerClosed),
            Ok(0) => return Err(CodecError::Truncated { field: "frame len" }.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(NetError::io("read frame len", &e)),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > max {
        return Err(CodecError::FrameTooLarge {
            len: len as u64,
            max,
        }
        .into());
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            NetError::Codec(CodecError::Truncated {
                field: "frame payload",
            })
        } else {
            NetError::io("read frame payload", &e)
        }
    })?;
    Ok(payload)
}

/// Encodes and writes one message as a frame.
pub fn send_msg(w: &mut impl Write, msg: &WireMsg) -> Result<(), NetError> {
    write_frame(w, &msg.encode())
}

/// Reads and decodes one message frame.
pub fn recv_msg(r: &mut impl Read, max: u32) -> Result<WireMsg, NetError> {
    let payload = read_frame(r, max)?;
    Ok(WireMsg::decode(&payload)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip_over_a_buffer() {
        let msgs = [
            WireMsg::Hello { node: 7 },
            WireMsg::Estimate {
                token: 9,
                sql: "SELECT 1".into(),
            },
            WireMsg::Shutdown,
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            send_msg(&mut buf, m).unwrap();
        }
        let mut r = &buf[..];
        for m in &msgs {
            assert_eq!(&recv_msg(&mut r, MAX_FRAME).unwrap(), m);
        }
        assert_eq!(recv_msg(&mut r, MAX_FRAME), Err(NetError::PeerClosed));
    }

    #[test]
    fn oversized_prefix_errors_before_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        // No payload follows; if the reader tried to allocate first this
        // would be a 4 GiB Vec.
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r, MAX_FRAME),
            Err(NetError::Codec(CodecError::FrameTooLarge {
                len: u32::MAX as u64,
                max: MAX_FRAME,
            }))
        );
    }

    #[test]
    fn mid_frame_eof_is_truncated() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.extend_from_slice(&[1, 2, 3]);
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r, MAX_FRAME),
            Err(NetError::Codec(CodecError::Truncated {
                field: "frame payload",
            }))
        );
    }

    #[test]
    fn mid_prefix_eof_is_truncated() {
        let buf = [0u8, 1];
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r, MAX_FRAME),
            Err(NetError::Codec(CodecError::Truncated {
                field: "frame len"
            }))
        );
    }

    #[test]
    fn oversized_payload_refused_on_write() {
        let payload = vec![0u8; MAX_FRAME as usize + 1];
        let mut out = Vec::new();
        assert!(matches!(
            write_frame(&mut out, &payload),
            Err(NetError::Codec(CodecError::FrameTooLarge { .. }))
        ));
        assert!(out.is_empty(), "nothing may be written");
    }
}
