//! # qa-net — a from-scratch TCP transport for the federation
//!
//! The paper validates QA-NT on a real deployment of five heterogeneous
//! PCs (§5.2); `qa-cluster` reproduced that with five OS *threads* over
//! `std::sync::mpsc`, so nothing ever crossed a socket. This crate is the
//! wire layer that lets the same federation run as real processes:
//!
//! * [`wire`] — a versioned binary codec for every cluster protocol
//!   message ([`WireMsg`]): explicit little-endian encode/decode, one tag
//!   byte per message, typed [`CodecError`]s for every malformed input.
//!   No serde — the workspace is hermetic (zero registry deps) and the
//!   format is small enough to own.
//! * [`frame`] — length-prefixed frames over any `Read`/`Write` pair,
//!   with a hard frame-size cap (an adversarial length prefix errors
//!   out before any allocation) and the magic + protocol-version
//!   handshake ([`frame::PROTOCOL_VERSION`]).
//! * [`conn`] — a per-peer [`Connection`]: dedicated reader and writer
//!   threads, an outgoing send queue, ping/pong heartbeats with an idle
//!   deadline, and dial-time retry with the capped exponential backoff
//!   the cluster driver established (base × 2^attempt, capped at 8×).
//!
//! Everything observable — connect, handshake, retry, frame drop, peer
//! death — flows through the `qa_simnet::telemetry` taxonomy
//! (`peer_connected`, `handshake_completed`, `connect_retried`,
//! `frame_dropped`, `peer_died`), so JSONL traces from a multi-process
//! run parse with the same `check_trace` validator as simulator traces.
//!
//! The crate is std-only and knows nothing about query allocation: it
//! moves [`WireMsg`] values between processes. `qa-cluster` builds its
//! transport-agnostic driver on top.

pub mod conn;
pub mod frame;
pub mod wire;

pub use conn::{backoff, ConnConfig, Connection};
pub use frame::{read_frame, recv_msg, send_msg, write_frame, MAGIC, MAX_FRAME, PROTOCOL_VERSION};
pub use wire::{CodecError, NetError, WireMsg};
