//! The versioned binary codec for cluster protocol messages.
//!
//! One frame payload is `[tag: u8][fields…]`, all integers and floats
//! explicit little-endian. Strings are `u32` byte-length + UTF-8 bytes;
//! optional strings and vectors carry a presence byte / element count.
//! The decoder is strict: every length is validated against the bytes
//! actually present **before** any allocation, unknown tags and protocol
//! versions are typed errors, and trailing bytes after a complete message
//! are rejected — a desynced stream can never be silently misparsed.
//!
//! [`WireMsg::Hello`]/[`WireMsg::HelloAck`] carry the magic and protocol
//! version inline, so version negotiation flows through the same decode
//! path (and the same adversarial tests) as everything else.

use crate::frame::{MAGIC, PROTOCOL_VERSION};
use std::fmt;

/// A malformed byte sequence, detected during decode (or an oversized
/// frame detected by the frame reader).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the named field was complete.
    Truncated {
        /// The field being read when bytes ran out.
        field: &'static str,
    },
    /// A frame length prefix exceeded the cap. Raised before any
    /// allocation, so a hostile prefix cannot balloon memory.
    FrameTooLarge {
        /// The claimed payload length.
        len: u64,
        /// The configured cap.
        max: u32,
    },
    /// The first payload byte names no known message.
    UnknownTag(u8),
    /// A handshake frame did not start with `b"QANT"`.
    BadMagic([u8; 4]),
    /// The peer speaks a protocol version we do not.
    UnknownVersion(u16),
    /// A complete message left unconsumed bytes behind it.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A string field held invalid UTF-8.
    BadUtf8 {
        /// The offending field.
        field: &'static str,
    },
    /// A field held a value outside its domain (e.g. a bool that is
    /// neither 0 nor 1).
    BadValue {
        /// The offending field.
        field: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { field } => write!(f, "truncated frame while reading {field}"),
            CodecError::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds cap {max}")
            }
            CodecError::UnknownTag(tag) => write!(f, "unknown message tag {tag:#04x}"),
            CodecError::BadMagic(m) => write!(f, "bad handshake magic {m:02x?}"),
            CodecError::UnknownVersion(v) => {
                write!(f, "unknown protocol version {v} (ours: {PROTOCOL_VERSION})")
            }
            CodecError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after message")
            }
            CodecError::BadUtf8 { field } => write!(f, "field {field} is not valid UTF-8"),
            CodecError::BadValue { field } => write!(f, "field {field} holds an invalid value"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A transport-layer failure. IO errors are captured as operation +
/// message so the type stays `Clone + PartialEq` (and hence can ride
/// inside `ClusterError`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The byte stream was malformed.
    Codec(CodecError),
    /// An OS-level socket failure.
    Io {
        /// What we were doing ("connect", "read frame", …).
        op: &'static str,
        /// The OS error text.
        detail: String,
    },
    /// The handshake did not complete.
    Handshake {
        /// Why.
        reason: String,
    },
    /// Dialing gave up after exhausting its retry budget.
    ConnectFailed {
        /// The address dialed.
        addr: String,
        /// Attempts made.
        attempts: u32,
        /// The last attempt's error text.
        detail: String,
    },
    /// The peer is gone (socket closed, heartbeat deadline missed, or the
    /// connection was torn down under us).
    PeerClosed,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Codec(e) => write!(f, "codec error: {e}"),
            NetError::Io { op, detail } => write!(f, "io error during {op}: {detail}"),
            NetError::Handshake { reason } => write!(f, "handshake failed: {reason}"),
            NetError::ConnectFailed {
                addr,
                attempts,
                detail,
            } => write!(
                f,
                "connect to {addr} failed after {attempts} attempts: {detail}"
            ),
            NetError::PeerClosed => write!(f, "peer connection closed"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> NetError {
        NetError::Codec(e)
    }
}

impl NetError {
    /// Wraps an `io::Error` with the operation that hit it.
    pub fn io(op: &'static str, e: &std::io::Error) -> NetError {
        NetError::Io {
            op,
            detail: e.to_string(),
        }
    }
}

/// One cluster protocol message on the wire.
///
/// Request/reply pairs correlate through a `token` the requester chose;
/// replies also carry the responding `node` id so they are
/// self-describing in captured traces. Classes are raw `u32`s (the
/// `ClassId` newtype lives upstream in `qa-workload`; the wire layer
/// stays dependency-light).
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Dialer's handshake: magic + protocol version + the dialer's node
    /// id (drivers use [`CLIENT_NODE`]).
    Hello {
        /// The dialing peer's node id.
        node: u32,
    },
    /// Listener's handshake reply: magic + version + its node id.
    HelloAck {
        /// The listening node's id.
        node: u32,
    },
    /// Heartbeat probe.
    Ping {
        /// Echo nonce.
        nonce: u64,
    },
    /// Heartbeat answer.
    Pong {
        /// The probe's nonce.
        nonce: u64,
    },
    /// Greedy's estimate poll.
    Estimate {
        /// Reply-correlation token.
        token: u64,
        /// The SQL to estimate.
        sql: String,
    },
    /// Reply to [`WireMsg::Estimate`].
    EstimateReply {
        /// The request's token.
        token: u64,
        /// The responding node.
        node: u32,
        /// History-corrected execution estimate (ms).
        exec_ms: f64,
    },
    /// QA-NT's call-for-offers.
    CallForOffers {
        /// Reply-correlation token.
        token: u64,
        /// The query's class.
        class: u32,
        /// The SQL backing the offer's execution estimate.
        sql: String,
    },
    /// Reply to [`WireMsg::CallForOffers`].
    OfferReply {
        /// The request's token.
        token: u64,
        /// The responding node.
        node: u32,
        /// Whether market supply was available.
        offered: bool,
        /// Estimated completion (backlog + execution), ms.
        completion_ms: f64,
    },
    /// Execute an accepted assignment.
    Execute {
        /// Reply-correlation token.
        token: u64,
        /// The query's class.
        class: u32,
        /// The SQL.
        sql: String,
    },
    /// Reply to [`WireMsg::Execute`].
    ExecReply {
        /// The request's token.
        token: u64,
        /// The executing node.
        node: u32,
        /// Rows returned.
        rows: u64,
        /// Measured execution time (ms).
        exec_ms: f64,
        /// Error text if the query failed.
        error: Option<String>,
    },
    /// A QA-NT market period boundary.
    PeriodTick,
    /// Ask the node for its private per-class price vector.
    DumpPrices {
        /// Reply-correlation token.
        token: u64,
    },
    /// Reply to [`WireMsg::DumpPrices`] (empty for non-market nodes).
    Prices {
        /// The request's token.
        token: u64,
        /// The responding node.
        node: u32,
        /// Private per-class prices.
        prices: Vec<f64>,
    },
    /// Ask the node for a snapshot of its metrics registry (counters,
    /// gauges, Welford summaries, log-bucket histograms). The fleet
    /// scrape (`qa-ctl stats`) fans this to every node and merges the
    /// replies.
    StatsRequest {
        /// Reply-correlation token.
        token: u64,
    },
    /// Reply to [`WireMsg::StatsRequest`].
    StatsReply {
        /// The request's token.
        token: u64,
        /// The responding node.
        node: u32,
        /// The registry snapshot as compact JSON
        /// (`MetricsRegistry::snapshot().dump()`): self-describing,
        /// forward-compatible as metric families come and go, and
        /// directly mergeable via `MetricsRegistry::merge_snapshot`.
        json: String,
    },
    /// Shut the node down.
    Shutdown,
}

/// The node id drivers/controllers present in their [`WireMsg::Hello`] —
/// they are clients of every node, not members of the fleet.
pub const CLIENT_NODE: u32 = u32::MAX;

const TAG_HELLO: u8 = 0x01;
const TAG_HELLO_ACK: u8 = 0x02;
const TAG_PING: u8 = 0x03;
const TAG_PONG: u8 = 0x04;
const TAG_ESTIMATE: u8 = 0x10;
const TAG_ESTIMATE_REPLY: u8 = 0x11;
const TAG_CALL_FOR_OFFERS: u8 = 0x12;
const TAG_OFFER_REPLY: u8 = 0x13;
const TAG_EXECUTE: u8 = 0x14;
const TAG_EXEC_REPLY: u8 = 0x15;
const TAG_PERIOD_TICK: u8 = 0x20;
const TAG_DUMP_PRICES: u8 = 0x21;
const TAG_PRICES: u8 = 0x22;
const TAG_STATS_REQUEST: u8 = 0x23;
const TAG_STATS_REPLY: u8 = 0x24;
const TAG_SHUTDOWN: u8 = 0x2f;

// -- encode helpers ---------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_str(out: &mut Vec<u8>, s: &Option<String>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

fn put_f64s(out: &mut Vec<u8>, xs: &[f64]) {
    put_u32(out, xs.len() as u32);
    for &x in xs {
        put_f64(out, x);
    }
}

// -- decode helpers ---------------------------------------------------------

/// Bounds-checked little-endian reader over a payload slice. Every take
/// validates the remaining length first, so decode never over-reads and
/// never allocates more than the buffer actually holds.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], CodecError> {
        if self.buf.len() - self.pos < n {
            return Err(CodecError::Truncated { field });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, field)?[0])
    }

    fn u16(&mut self, field: &'static str) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2, field)?.try_into().unwrap()))
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4, field)?.try_into().unwrap()))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8, field)?.try_into().unwrap()))
    }

    fn f64(&mut self, field: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64(field)?))
    }

    fn bool(&mut self, field: &'static str) -> Result<bool, CodecError> {
        match self.u8(field)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::BadValue { field }),
        }
    }

    fn str(&mut self, field: &'static str) -> Result<String, CodecError> {
        let len = self.u32(field)? as usize;
        let bytes = self.take(len, field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8 { field })
    }

    fn opt_str(&mut self, field: &'static str) -> Result<Option<String>, CodecError> {
        match self.u8(field)? {
            0 => Ok(None),
            1 => Ok(Some(self.str(field)?)),
            _ => Err(CodecError::BadValue { field }),
        }
    }

    fn f64s(&mut self, field: &'static str) -> Result<Vec<f64>, CodecError> {
        let count = self.u32(field)? as usize;
        // Validate against the bytes present before reserving anything:
        // a hostile count cannot trigger an unbounded allocation.
        if self.buf.len() - self.pos < count * 8 {
            return Err(CodecError::Truncated { field });
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.f64(field)?);
        }
        Ok(out)
    }

    fn finish(self) -> Result<(), CodecError> {
        let extra = self.buf.len() - self.pos;
        if extra == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes { extra })
        }
    }
}

impl WireMsg {
    /// Encodes this message as one frame payload (tag + fields; the
    /// length prefix is the frame layer's job).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            WireMsg::Hello { node } => {
                out.push(TAG_HELLO);
                out.extend_from_slice(&MAGIC);
                put_u16(&mut out, PROTOCOL_VERSION);
                put_u32(&mut out, *node);
            }
            WireMsg::HelloAck { node } => {
                out.push(TAG_HELLO_ACK);
                out.extend_from_slice(&MAGIC);
                put_u16(&mut out, PROTOCOL_VERSION);
                put_u32(&mut out, *node);
            }
            WireMsg::Ping { nonce } => {
                out.push(TAG_PING);
                put_u64(&mut out, *nonce);
            }
            WireMsg::Pong { nonce } => {
                out.push(TAG_PONG);
                put_u64(&mut out, *nonce);
            }
            WireMsg::Estimate { token, sql } => {
                out.push(TAG_ESTIMATE);
                put_u64(&mut out, *token);
                put_str(&mut out, sql);
            }
            WireMsg::EstimateReply {
                token,
                node,
                exec_ms,
            } => {
                out.push(TAG_ESTIMATE_REPLY);
                put_u64(&mut out, *token);
                put_u32(&mut out, *node);
                put_f64(&mut out, *exec_ms);
            }
            WireMsg::CallForOffers { token, class, sql } => {
                out.push(TAG_CALL_FOR_OFFERS);
                put_u64(&mut out, *token);
                put_u32(&mut out, *class);
                put_str(&mut out, sql);
            }
            WireMsg::OfferReply {
                token,
                node,
                offered,
                completion_ms,
            } => {
                out.push(TAG_OFFER_REPLY);
                put_u64(&mut out, *token);
                put_u32(&mut out, *node);
                put_bool(&mut out, *offered);
                put_f64(&mut out, *completion_ms);
            }
            WireMsg::Execute { token, class, sql } => {
                out.push(TAG_EXECUTE);
                put_u64(&mut out, *token);
                put_u32(&mut out, *class);
                put_str(&mut out, sql);
            }
            WireMsg::ExecReply {
                token,
                node,
                rows,
                exec_ms,
                error,
            } => {
                out.push(TAG_EXEC_REPLY);
                put_u64(&mut out, *token);
                put_u32(&mut out, *node);
                put_u64(&mut out, *rows);
                put_f64(&mut out, *exec_ms);
                put_opt_str(&mut out, error);
            }
            WireMsg::PeriodTick => out.push(TAG_PERIOD_TICK),
            WireMsg::DumpPrices { token } => {
                out.push(TAG_DUMP_PRICES);
                put_u64(&mut out, *token);
            }
            WireMsg::Prices {
                token,
                node,
                prices,
            } => {
                out.push(TAG_PRICES);
                put_u64(&mut out, *token);
                put_u32(&mut out, *node);
                put_f64s(&mut out, prices);
            }
            WireMsg::StatsRequest { token } => {
                out.push(TAG_STATS_REQUEST);
                put_u64(&mut out, *token);
            }
            WireMsg::StatsReply { token, node, json } => {
                out.push(TAG_STATS_REPLY);
                put_u64(&mut out, *token);
                put_u32(&mut out, *node);
                put_str(&mut out, json);
            }
            WireMsg::Shutdown => out.push(TAG_SHUTDOWN),
        }
        out
    }

    /// Decodes one frame payload. Strict: unknown tags/versions, short
    /// buffers, invalid values and trailing bytes are all typed errors,
    /// never panics.
    pub fn decode(payload: &[u8]) -> Result<WireMsg, CodecError> {
        let mut c = Cursor::new(payload);
        let tag = c.u8("tag")?;
        let msg = match tag {
            TAG_HELLO | TAG_HELLO_ACK => {
                let magic: [u8; 4] = c.take(4, "magic")?.try_into().unwrap();
                if magic != MAGIC {
                    return Err(CodecError::BadMagic(magic));
                }
                let version = c.u16("version")?;
                if version != PROTOCOL_VERSION {
                    return Err(CodecError::UnknownVersion(version));
                }
                let node = c.u32("node")?;
                if tag == TAG_HELLO {
                    WireMsg::Hello { node }
                } else {
                    WireMsg::HelloAck { node }
                }
            }
            TAG_PING => WireMsg::Ping {
                nonce: c.u64("nonce")?,
            },
            TAG_PONG => WireMsg::Pong {
                nonce: c.u64("nonce")?,
            },
            TAG_ESTIMATE => WireMsg::Estimate {
                token: c.u64("token")?,
                sql: c.str("sql")?,
            },
            TAG_ESTIMATE_REPLY => WireMsg::EstimateReply {
                token: c.u64("token")?,
                node: c.u32("node")?,
                exec_ms: c.f64("exec_ms")?,
            },
            TAG_CALL_FOR_OFFERS => WireMsg::CallForOffers {
                token: c.u64("token")?,
                class: c.u32("class")?,
                sql: c.str("sql")?,
            },
            TAG_OFFER_REPLY => WireMsg::OfferReply {
                token: c.u64("token")?,
                node: c.u32("node")?,
                offered: c.bool("offered")?,
                completion_ms: c.f64("completion_ms")?,
            },
            TAG_EXECUTE => WireMsg::Execute {
                token: c.u64("token")?,
                class: c.u32("class")?,
                sql: c.str("sql")?,
            },
            TAG_EXEC_REPLY => WireMsg::ExecReply {
                token: c.u64("token")?,
                node: c.u32("node")?,
                rows: c.u64("rows")?,
                exec_ms: c.f64("exec_ms")?,
                error: c.opt_str("error")?,
            },
            TAG_PERIOD_TICK => WireMsg::PeriodTick,
            TAG_DUMP_PRICES => WireMsg::DumpPrices {
                token: c.u64("token")?,
            },
            TAG_PRICES => WireMsg::Prices {
                token: c.u64("token")?,
                node: c.u32("node")?,
                prices: c.f64s("prices")?,
            },
            TAG_STATS_REQUEST => WireMsg::StatsRequest {
                token: c.u64("token")?,
            },
            TAG_STATS_REPLY => WireMsg::StatsReply {
                token: c.u64("token")?,
                node: c.u32("node")?,
                json: c.str("json")?,
            },
            TAG_SHUTDOWN => WireMsg::Shutdown,
            other => return Err(CodecError::UnknownTag(other)),
        };
        c.finish()?;
        Ok(msg)
    }

    /// A short stable name for logs and telemetry contexts.
    pub fn kind(&self) -> &'static str {
        match self {
            WireMsg::Hello { .. } => "hello",
            WireMsg::HelloAck { .. } => "hello_ack",
            WireMsg::Ping { .. } => "ping",
            WireMsg::Pong { .. } => "pong",
            WireMsg::Estimate { .. } => "estimate",
            WireMsg::EstimateReply { .. } => "estimate_reply",
            WireMsg::CallForOffers { .. } => "call_for_offers",
            WireMsg::OfferReply { .. } => "offer_reply",
            WireMsg::Execute { .. } => "execute",
            WireMsg::ExecReply { .. } => "exec_reply",
            WireMsg::PeriodTick => "period_tick",
            WireMsg::DumpPrices { .. } => "dump_prices",
            WireMsg::Prices { .. } => "prices",
            WireMsg::StatsRequest { .. } => "stats_request",
            WireMsg::StatsReply { .. } => "stats_reply",
            WireMsg::Shutdown => "shutdown",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_version_is_typed() {
        let mut bytes = WireMsg::Hello { node: 3 }.encode();
        // Version field sits after tag + 4 magic bytes.
        bytes[5] = 0xFF;
        bytes[6] = 0xFF;
        assert_eq!(
            WireMsg::decode(&bytes),
            Err(CodecError::UnknownVersion(0xFFFF))
        );
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = WireMsg::HelloAck { node: 0 }.encode();
        bytes[1] = b'X';
        assert!(matches!(
            WireMsg::decode(&bytes),
            Err(CodecError::BadMagic(_))
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = WireMsg::PeriodTick.encode();
        bytes.push(0);
        assert_eq!(
            WireMsg::decode(&bytes),
            Err(CodecError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn empty_payload_is_truncated() {
        assert_eq!(
            WireMsg::decode(&[]),
            Err(CodecError::Truncated { field: "tag" })
        );
    }

    #[test]
    fn bogus_float_count_cannot_allocate() {
        // Prices frame claiming u32::MAX floats but holding none.
        let mut bytes = vec![0x22];
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            WireMsg::decode(&bytes),
            Err(CodecError::Truncated { field: "prices" })
        );
    }

    #[test]
    fn bool_field_must_be_binary() {
        let mut bytes = WireMsg::OfferReply {
            token: 1,
            node: 2,
            offered: true,
            completion_ms: 3.0,
        }
        .encode();
        // The offered byte sits after tag + token(8) + node(4).
        bytes[13] = 7;
        assert_eq!(
            WireMsg::decode(&bytes),
            Err(CodecError::BadValue { field: "offered" })
        );
    }

    #[test]
    fn stats_messages_round_trip() {
        let req = WireMsg::StatsRequest { token: 42 };
        assert_eq!(WireMsg::decode(&req.encode()), Ok(req.clone()));
        assert_eq!(req.kind(), "stats_request");
        let reply = WireMsg::StatsReply {
            token: 42,
            node: 3,
            json:
                r#"{"counters":{"qad.queries_executed":7},"gauges":{},"stats":{},"histograms":{}}"#
                    .into(),
        };
        assert_eq!(WireMsg::decode(&reply.encode()), Ok(reply.clone()));
        assert_eq!(reply.kind(), "stats_reply");
        // Truncating the JSON length field is a typed error, not a panic.
        let mut bytes = reply.encode();
        bytes.truncate(14);
        assert_eq!(
            WireMsg::decode(&bytes),
            Err(CodecError::Truncated { field: "json" })
        );
    }

    #[test]
    fn errors_display_and_chain() {
        let e = NetError::from(CodecError::UnknownTag(0xEE));
        assert!(e.to_string().contains("0xee"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
