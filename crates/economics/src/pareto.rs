//! Pareto dominance and optimality (Definition 1).
//!
//! A solution to the QA problem is a pair of per-node supply and consumption
//! vector lists `<[s⃗ᵢ], [c⃗ᵢ]>`. Solution A *Pareto dominates* B iff every
//! node weakly prefers its consumption in A and at least one strictly
//! prefers it. A solution is *Pareto optimal* if nothing feasible dominates
//! it.
//!
//! Besides the two predicates, this module provides a brute-force enumerator
//! of all feasible solutions of a small economy — used by tests to verify
//! both the paper's worked example (LB is dominated by QA) and the
//! First-Theorem check in [`crate::welfare`].

use crate::preference::Preference;
use crate::supply::{enumerate_capacity_set, LinearCapacitySet};
use crate::vectors::QuantityVector;

/// A solution `<[s⃗ᵢ], [c⃗ᵢ]>`: one supply and one consumption vector per
/// node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// Per-node supply vectors `s⃗ᵢ`.
    pub supplies: Vec<QuantityVector>,
    /// Per-node consumption vectors `c⃗ᵢ`.
    pub consumptions: Vec<QuantityVector>,
}

impl Solution {
    /// Number of nodes `I`.
    pub fn num_nodes(&self) -> usize {
        self.consumptions.len()
    }

    /// Aggregate supply `s⃗ = Σᵢ s⃗ᵢ` (eq. 1).
    pub fn aggregate_supply(&self) -> QuantityVector {
        QuantityVector::aggregate(&self.supplies)
    }

    /// Aggregate consumption `c⃗ = Σᵢ c⃗ᵢ` (eq. 1).
    pub fn aggregate_consumption(&self) -> QuantityVector {
        QuantityVector::aggregate(&self.consumptions)
    }

    /// Checks the market-clearing identity of eq. 3:
    /// `s⃗ = c⃗ ≤ d⃗`.
    pub fn satisfies_balance(&self, demands: &[QuantityVector]) -> bool {
        let s = self.aggregate_supply();
        let c = self.aggregate_consumption();
        let d = QuantityVector::aggregate(demands);
        s == c && c.le(&d)
    }
}

/// `true` iff solution `a` Pareto dominates solution `b` under the given
/// per-node preferences (Definition 1).
pub fn dominates<P: Preference>(a: &Solution, b: &Solution, prefs: &[P]) -> bool {
    assert_eq!(a.num_nodes(), b.num_nodes(), "node count mismatch");
    assert_eq!(a.num_nodes(), prefs.len(), "preference count mismatch");
    let all_weak =
        (0..a.num_nodes()).all(|i| prefs[i].prefers(&a.consumptions[i], &b.consumptions[i]));
    let some_strict = (0..a.num_nodes())
        .any(|i| prefs[i].strictly_prefers(&a.consumptions[i], &b.consumptions[i]));
    all_weak && some_strict
}

/// `true` iff `sol` is not dominated by any solution in `candidates`.
pub fn is_pareto_optimal<P: Preference>(
    sol: &Solution,
    candidates: &[Solution],
    prefs: &[P],
) -> bool {
    !candidates.iter().any(|c| dominates(c, sol, prefs))
}

/// Brute-force enumeration of all feasible solutions of a small economy.
///
/// Feasibility means: each node's supply vector lies in its capacity set,
/// the aggregate supply does not exceed the aggregate demand (consumed
/// queries must have been asked for), and consumptions are a per-node split
/// of the aggregate supply with `c⃗ᵢ ≤ d⃗ᵢ` (a node cannot consume answers
/// to queries it never posed).
///
/// Exponential in nodes × classes × capacity — strictly for tests on
/// economies the size of the paper's worked example.
pub fn enumerate_solutions(
    supply_sets: &[LinearCapacitySet],
    demands: &[QuantityVector],
) -> Vec<Solution> {
    assert_eq!(supply_sets.len(), demands.len());
    let aggregate_demand = QuantityVector::aggregate(demands);

    // All feasible supply combinations.
    let per_node: Vec<Vec<QuantityVector>> = supply_sets
        .iter()
        .map(|s| enumerate_capacity_set(s, Some(&aggregate_demand)))
        .collect();

    let mut out = Vec::new();
    let mut chosen: Vec<QuantityVector> = Vec::with_capacity(per_node.len());
    fn rec_supplies(
        per_node: &[Vec<QuantityVector>],
        demands: &[QuantityVector],
        aggregate_demand: &QuantityVector,
        chosen: &mut Vec<QuantityVector>,
        out: &mut Vec<Solution>,
    ) {
        if chosen.len() == per_node.len() {
            let agg = QuantityVector::aggregate(chosen.iter());
            if !agg.le(aggregate_demand) {
                return;
            }
            // Split the aggregate supply into per-node consumptions with
            // cᵢ ≤ dᵢ and Σ cᵢ = agg.
            let mut consumption: Vec<QuantityVector> = demands
                .iter()
                .map(|d| QuantityVector::zeros(d.num_classes()))
                .collect();
            let supplies = chosen.clone();
            split_consumptions(&agg, demands, 0, &mut consumption, &supplies, out);
            return;
        }
        let i = chosen.len();
        for s in &per_node[i] {
            chosen.push(s.clone());
            rec_supplies(per_node, demands, aggregate_demand, chosen, out);
            chosen.pop();
        }
    }

    /// Distributes the aggregate supply class-by-class across nodes.
    fn split_consumptions(
        agg: &QuantityVector,
        demands: &[QuantityVector],
        class: usize,
        consumption: &mut Vec<QuantityVector>,
        supplies: &[QuantityVector],
        out: &mut Vec<Solution>,
    ) {
        if class == agg.num_classes() {
            out.push(Solution {
                supplies: supplies.to_vec(),
                consumptions: consumption.clone(),
            });
            return;
        }
        let total = agg.get(class);
        // Enumerate all compositions of `total` into per-node parts bounded
        // by each node's demand.
        #[allow(clippy::too_many_arguments)] // recursion threads the full search state
        fn comp(
            total: u64,
            node: usize,
            demands: &[QuantityVector],
            class: usize,
            consumption: &mut Vec<QuantityVector>,
            agg: &QuantityVector,
            supplies: &[QuantityVector],
            out: &mut Vec<Solution>,
        ) {
            if node == demands.len() {
                if total == 0 {
                    split_consumptions(agg, demands, class + 1, consumption, supplies, out);
                }
                return;
            }
            let cap = demands[node].get(class).min(total);
            for take in 0..=cap {
                consumption[node].set(class, take);
                comp(
                    total - take,
                    node + 1,
                    demands,
                    class,
                    consumption,
                    agg,
                    supplies,
                    out,
                );
            }
            consumption[node].set(class, 0);
        }
        comp(total, 0, demands, class, consumption, agg, supplies, out);
    }

    rec_supplies(&per_node, demands, &aggregate_demand, &mut chosen, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::ThroughputPreference;

    fn qv(v: &[u64]) -> QuantityVector {
        QuantityVector::from_counts(v.to_vec())
    }

    /// The paper's running example within one period T = 500 ms:
    /// N1 runs q1 in 400 ms / q2 in 100 ms; N2 runs q1 in 450 ms / q2 in
    /// 500 ms. Demands in period 1: N1 = (1,6), N2 = (1,0).
    fn example() -> (Vec<LinearCapacitySet>, Vec<QuantityVector>) {
        let n1 = LinearCapacitySet::new(vec![Some(400.0), Some(100.0)], 500.0);
        let n2 = LinearCapacitySet::new(vec![Some(450.0), Some(500.0)], 500.0);
        (vec![n1, n2], vec![qv(&[1, 6]), qv(&[1, 0])])
    }

    fn lb_solution() -> Solution {
        // LB: N1 supplies (1,1) [q1 at 0-400, one q2], N2 supplies (1,0);
        // N1 consumes (1,1), N2 consumes (1,0).
        Solution {
            supplies: vec![qv(&[1, 1]), qv(&[1, 0])],
            consumptions: vec![qv(&[1, 1]), qv(&[1, 0])],
        }
    }

    fn qa_solution() -> Solution {
        // QA: N1 supplies only q2 (5 fit in 500ms), N2 supplies q1.
        // N1 consumes (1,4): its q1 answered by N2, 4 of its q2 answered
        // by itself. Wait — aggregate supply (1,5) vs aggregate demand
        // (2,6): N1 gets (0,5) of its own q2 plus N2's q1 answer goes to
        // N2's own query. Distribution: N1 consumes (0,5), N2 consumes
        // (1,0).
        Solution {
            supplies: vec![qv(&[0, 5]), qv(&[1, 0])],
            consumptions: vec![qv(&[0, 5]), qv(&[1, 0])],
        }
    }

    #[test]
    fn qa_dominates_lb_in_paper_example() {
        let prefs = vec![ThroughputPreference, ThroughputPreference];
        assert!(dominates(&qa_solution(), &lb_solution(), &prefs));
        assert!(!dominates(&lb_solution(), &qa_solution(), &prefs));
    }

    #[test]
    fn dominance_is_irreflexive() {
        let prefs = vec![ThroughputPreference, ThroughputPreference];
        assert!(!dominates(&qa_solution(), &qa_solution(), &prefs));
    }

    #[test]
    fn dominance_is_asymmetric_on_enumeration() {
        let (sets, demands) = example();
        let prefs = vec![ThroughputPreference, ThroughputPreference];
        let all = enumerate_solutions(&sets, &demands);
        for a in all.iter().take(80) {
            for b in all.iter().take(80) {
                if dominates(a, b, &prefs) {
                    assert!(!dominates(b, a, &prefs), "asymmetry violated");
                }
            }
        }
    }

    #[test]
    fn lb_is_not_pareto_optimal_but_qa_is() {
        let (sets, demands) = example();
        let prefs = vec![ThroughputPreference, ThroughputPreference];
        let all = enumerate_solutions(&sets, &demands);
        assert!(!is_pareto_optimal(&lb_solution(), &all, &prefs));
        assert!(is_pareto_optimal(&qa_solution(), &all, &prefs));
    }

    #[test]
    fn balance_identity_holds_for_both_solutions() {
        let (_, demands) = example();
        assert!(lb_solution().satisfies_balance(&demands));
        assert!(qa_solution().satisfies_balance(&demands));
    }

    #[test]
    fn enumeration_respects_feasibility() {
        let (sets, demands) = example();
        let d = QuantityVector::aggregate(&demands);
        for sol in enumerate_solutions(&sets, &demands) {
            for (i, s) in sol.supplies.iter().enumerate() {
                assert!(
                    crate::supply::SupplySet::contains(&sets[i], s),
                    "infeasible supply"
                );
            }
            assert!(sol.satisfies_balance(&demands));
            assert!(sol.aggregate_supply().le(&d));
            for (c, dem) in sol.consumptions.iter().zip(&demands) {
                assert!(c.le(dem), "node consumed more than it demanded");
            }
        }
    }

    #[test]
    fn pareto_front_maximizes_total_under_throughput_preference() {
        let (sets, demands) = example();
        let prefs = vec![ThroughputPreference, ThroughputPreference];
        let all = enumerate_solutions(&sets, &demands);
        let best_total = all
            .iter()
            .map(|s| s.aggregate_consumption().total())
            .max()
            .unwrap();
        // The QA allocation achieves the maximum feasible throughput (6).
        assert_eq!(best_total, 6);
        assert_eq!(qa_solution().aggregate_consumption().total(), best_total);
        // Under throughput preferences a Pareto-optimal solution cannot be
        // beaten in total by more than redistribution allows: every optimal
        // solution has total == best among solutions comparable to it.
        for sol in all.iter().filter(|s| is_pareto_optimal(s, &all, &prefs)) {
            // No other solution weakly improves every node and strictly one.
            assert!(all.iter().all(|other| !dominates(other, sol, &prefs)));
        }
    }
}
