//! Parent-market clearing over broker bids — the hierarchical tier.
//!
//! A sharded federation (`qa_sim::sharded`) runs one complete QA-NT market
//! per shard. This module is the *second* tier: each shard's broker
//! aggregates its per-class supply and mean ln-price into a [`BrokerBid`],
//! and a [`ParentMarket`] clears the bids against the window's cross-shard
//! demand. Two mechanisms are offered behind [`ParentMechanism`]:
//!
//! * **QA-NT at the broker tier** — the parent keeps its own private
//!   [`NonTatonnementPricer`] over classes. Demand is rationed to the
//!   cheapest brokers first; unmet demand registers as rejections (price
//!   rises ×(1+λ)) and unsold broker capacity as period-end leftover
//!   (price falls). No iteration, no extra messages: one clearing per
//!   period window, exactly like a node's market step.
//! * **WALRAS-style tâtonnement** — following Wellman's multicommodity-flow
//!   decomposition, each broker is summarized by a log-linear supply curve
//!   anchored at its reservation ln-price, and the parent iterates
//!   `π ← π + λ·ẑ(π)` (relative excess demand, log-price space) until the
//!   market clears within tolerance. The iteration is *local to the
//!   parent* — brokers submitted their curves once, so cross-tier traffic
//!   stays O(S) messages per period regardless of the round count.
//!
//! Both mechanisms produce a [`ClearingOutcome`]: integer per-broker
//! allocations (never exceeding reported capacity), the parent's clearing
//! ln-prices (these flow *down* to bias per-shard routing credits), and the
//! unserved excess demand (this flows *up*, to be escalated into the next
//! window's clearing).

use crate::non_tatonnement::{NonTatonnementPricer, PricerConfig};
use crate::vectors::QuantityVector;

/// Which clearing mechanism the parent market runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParentMechanism {
    /// Non-tâtonnement: one greedy cheapest-first rationing per window,
    /// prices adjusted from unmet demand / unsold capacity afterwards.
    QaNt,
    /// Tâtonnement: iterate the parent ln-price against the brokers'
    /// aggregate supply curves until relative excess demand is within
    /// tolerance, then ration at the clearing price.
    Walras,
}

/// Tuning knobs of the parent market.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParentMarketConfig {
    /// The clearing mechanism.
    pub mechanism: ParentMechanism,
    /// Price dynamics shared by both mechanisms (λ, floor, ceiling,
    /// initial price). The QA-NT variant feeds these straight into its
    /// private pricer; the WALRAS variant uses floor/ceiling as the
    /// ln-price clamp range.
    pub pricer: PricerConfig,
    /// WALRAS step size on relative excess demand (log-price space).
    pub walras_lambda: f64,
    /// WALRAS round budget per class per window.
    pub max_rounds: u32,
    /// WALRAS stop tolerance on |excess demand| / demand.
    pub tolerance: f64,
    /// QA-NT leftover saturation: unsold parent-tier capacity scales with
    /// shard size (thousands of units), not with a node's supply, so the
    /// period-decay signal is capped here — without it one underloaded
    /// window drives the parent price to the floor and the downward bias
    /// loses all shape.
    pub leftover_cap: u64,
}

impl Default for ParentMarketConfig {
    fn default() -> Self {
        ParentMarketConfig {
            mechanism: ParentMechanism::QaNt,
            pricer: PricerConfig::default(),
            walras_lambda: 0.5,
            max_rounds: 64,
            tolerance: 0.05,
            leftover_cap: 5,
        }
    }
}

impl ParentMarketConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on out-of-range values (delegates price checks to
    /// [`PricerConfig::validate`]).
    pub fn validate(&self) {
        self.pricer.validate();
        assert!(
            self.walras_lambda.is_finite() && self.walras_lambda > 0.0,
            "walras_lambda must be positive, got {}",
            self.walras_lambda
        );
        assert!(self.max_rounds > 0, "max_rounds must be positive");
        assert!(
            self.tolerance.is_finite() && self.tolerance > 0.0 && self.tolerance < 1.0,
            "tolerance must be in (0,1), got {}",
            self.tolerance
        );
        assert!(self.leftover_cap > 0, "leftover_cap must be positive");
    }
}

/// One broker's sealed bid for a clearing window: per-class capacity on
/// offer and the reservation ln-price it was aggregated at (the mean
/// ln-price across the shard's nodes).
#[derive(Debug, Clone, PartialEq)]
pub struct BrokerBid {
    /// Units of class-`k` supply the broker's shard reported.
    pub capacity: Vec<u64>,
    /// Mean ln-price of class `k` across the shard — the broker's
    /// reservation price for its capacity.
    pub reservation_ln: Vec<f64>,
}

impl BrokerBid {
    /// A bid over `k` classes with zero capacity and neutral prices.
    pub fn empty(k: usize) -> Self {
        BrokerBid {
            capacity: vec![0; k],
            reservation_ln: vec![0.0; k],
        }
    }
}

/// The result of clearing one window.
#[derive(Debug, Clone, PartialEq)]
pub struct ClearingOutcome {
    /// `allocations[b][k]` — units of class `k` awarded to broker `b`.
    /// Never exceeds the broker's reported capacity.
    pub allocations: Vec<Vec<u64>>,
    /// The parent's clearing ln-price per class after this window.
    pub ln_prices: Vec<f64>,
    /// Demand the market could not place this window, per class. The
    /// caller escalates it into the next window.
    pub unserved: Vec<u64>,
    /// Price-adjustment rounds spent (0 or 1 per class for QA-NT, up to
    /// `max_rounds` per class for WALRAS). Internal to the parent — not
    /// cross-tier messages.
    pub rounds: u32,
}

/// The parent market: persistent price state plus the clearing solver.
#[derive(Debug, Clone)]
pub struct ParentMarket {
    config: ParentMarketConfig,
    /// QA-NT price state (used when `mechanism == QaNt`).
    pricer: NonTatonnementPricer,
    /// WALRAS ln-price state, warm-started across windows.
    walras_ln: Vec<f64>,
}

impl ParentMarket {
    /// A parent market over `k` classes.
    pub fn new(k: usize, config: ParentMarketConfig) -> Self {
        config.validate();
        let initial_ln = config.pricer.initial_price.ln();
        ParentMarket {
            pricer: NonTatonnementPricer::new(k, config.pricer),
            walras_ln: vec![initial_ln; k],
            config,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.walras_ln.len()
    }

    /// The configuration.
    pub fn config(&self) -> &ParentMarketConfig {
        &self.config
    }

    /// Writes the parent's current ln-price per class into `out`.
    ///
    /// # Panics
    /// Panics when `out` is not sized to the class count.
    pub fn ln_prices_into(&self, out: &mut [f64]) {
        match self.config.mechanism {
            ParentMechanism::QaNt => self.pricer.ln_prices_into(out),
            ParentMechanism::Walras => {
                assert_eq!(out.len(), self.walras_ln.len(), "class count mismatch");
                out.copy_from_slice(&self.walras_ln);
            }
        }
    }

    /// Clears one window: rations `demand` (per class) across the broker
    /// `bids` and adjusts the parent prices. Allocation is conservative —
    /// for every class, `Σ_b allocations[b][k] + unserved[k] == demand[k]`
    /// and `allocations[b][k] <= bids[b].capacity[k]`.
    ///
    /// # Panics
    /// Panics when `bids` is empty, a bid's class count differs from the
    /// market's, or `demand` is mis-sized.
    pub fn clear(&mut self, bids: &[BrokerBid], demand: &[u64]) -> ClearingOutcome {
        let k = self.num_classes();
        assert!(!bids.is_empty(), "cannot clear a market with no brokers");
        assert_eq!(demand.len(), k, "demand class count mismatch");
        for (b, bid) in bids.iter().enumerate() {
            assert_eq!(bid.capacity.len(), k, "broker {b} capacity class count");
            assert_eq!(
                bid.reservation_ln.len(),
                k,
                "broker {b} reservation class count"
            );
        }
        match self.config.mechanism {
            ParentMechanism::QaNt => self.clear_qant(bids, demand),
            ParentMechanism::Walras => self.clear_walras(bids, demand),
        }
    }

    /// Brokers ordered cheapest-first for class `k` (reservation ln-price,
    /// then index — deterministic under ties).
    fn order_for_class(bids: &[BrokerBid], k: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..bids.len()).collect();
        order.sort_by(|&a, &b| {
            bids[a].reservation_ln[k]
                .total_cmp(&bids[b].reservation_ln[k])
                .then(a.cmp(&b))
        });
        order
    }

    fn clear_qant(&mut self, bids: &[BrokerBid], demand: &[u64]) -> ClearingOutcome {
        let k = self.num_classes();
        let mut allocations = vec![vec![0u64; k]; bids.len()];
        let mut unserved = vec![0u64; k];
        let mut leftover = vec![0u64; k];
        let mut rounds = 0u32;
        for kk in 0..k {
            let mut remaining = demand[kk];
            for &b in &Self::order_for_class(bids, kk) {
                let take = remaining.min(bids[b].capacity[kk]);
                allocations[b][kk] = take;
                remaining -= take;
            }
            unserved[kk] = remaining;
            let total_cap: u64 = bids.iter().map(|b| b.capacity[kk]).sum();
            let sold: u64 = demand[kk] - remaining;
            leftover[kk] = (total_cap - sold).min(self.config.leftover_cap);
            if remaining > 0 {
                // Excess demand at the broker tier: the parent infers the
                // tier is under-supplied and raises the class price, just
                // as a node does on a rejected request.
                self.pricer.on_rejections(kk, remaining);
                rounds += 1;
            } else if leftover[kk] > 0 {
                rounds += 1;
            }
        }
        self.pricer
            .on_period_end(&QuantityVector::from_counts(leftover));
        let mut ln_prices = vec![0.0; k];
        self.pricer.ln_prices_into(&mut ln_prices);
        ClearingOutcome {
            allocations,
            ln_prices,
            unserved,
            rounds,
        }
    }

    /// A broker's supply response at parent ln-price `pi`: full capacity at
    /// or above its reservation, an exponential ramp `c·e^{π−r}` below it
    /// (continuous at `π = r`, vanishing as the parent price falls far
    /// below what the shard charges).
    fn supply_at(bid: &BrokerBid, k: usize, pi: f64) -> f64 {
        let c = bid.capacity[k] as f64;
        let r = bid.reservation_ln[k];
        if pi >= r {
            c
        } else {
            c * (pi - r).exp()
        }
    }

    fn clear_walras(&mut self, bids: &[BrokerBid], demand: &[u64]) -> ClearingOutcome {
        let k = self.num_classes();
        let ln_floor = self.config.pricer.price_floor.ln();
        let ln_ceiling = self.config.pricer.price_ceiling.ln();
        let mut allocations = vec![vec![0u64; k]; bids.len()];
        let mut unserved = vec![0u64; k];
        let mut rounds = 0u32;
        for kk in 0..k {
            let d = demand[kk];
            if d == 0 {
                // Nothing to place: leave the warm-started price alone so
                // an idle class does not drift to the floor.
                continue;
            }
            // Tâtonnement on relative excess demand, eq. (6) in log-price
            // space: π ← π + λ·(d − S(π))/d, clamped to the price bounds.
            let mut pi = self.walras_ln[kk];
            for _ in 0..self.config.max_rounds {
                let supply: f64 = bids.iter().map(|b| Self::supply_at(b, kk, pi)).sum();
                let z_rel = (d as f64 - supply) / d as f64;
                if z_rel.abs() <= self.config.tolerance {
                    break;
                }
                pi = (pi + self.config.walras_lambda * z_rel).clamp(ln_floor, ln_ceiling);
                rounds += 1;
                if pi == ln_floor && z_rel < 0.0 || pi == ln_ceiling && z_rel > 0.0 {
                    // Pinned at a bound with excess still pushing outward:
                    // further rounds cannot move the price.
                    break;
                }
            }
            self.walras_ln[kk] = pi;
            // Ration at the clearing price, cheapest brokers first; each
            // broker serves at most its supply response (and never more
            // than its reported capacity).
            let mut remaining = d;
            for &b in &Self::order_for_class(bids, kk) {
                let offer = Self::supply_at(&bids[b], kk, pi).floor() as u64;
                let take = remaining.min(offer.min(bids[b].capacity[kk]));
                allocations[b][kk] = take;
                remaining -= take;
            }
            unserved[kk] = remaining;
        }
        ClearingOutcome {
            allocations,
            ln_prices: self.walras_ln.clone(),
            unserved,
            rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bid(capacity: &[u64], reservation_ln: &[f64]) -> BrokerBid {
        BrokerBid {
            capacity: capacity.to_vec(),
            reservation_ln: reservation_ln.to_vec(),
        }
    }

    fn market(mechanism: ParentMechanism, k: usize) -> ParentMarket {
        ParentMarket::new(
            k,
            ParentMarketConfig {
                mechanism,
                ..ParentMarketConfig::default()
            },
        )
    }

    fn check_conservation(bids: &[BrokerBid], demand: &[u64], out: &ClearingOutcome) {
        for k in 0..demand.len() {
            let placed: u64 = out.allocations.iter().map(|a| a[k]).sum();
            assert_eq!(
                placed + out.unserved[k],
                demand[k],
                "class {k}: allocation + unserved must equal demand"
            );
            for (b, alloc) in out.allocations.iter().enumerate() {
                assert!(
                    alloc[k] <= bids[b].capacity[k],
                    "broker {b} over-allocated class {k}"
                );
            }
        }
    }

    #[test]
    fn qant_rations_cheapest_brokers_first() {
        let mut m = market(ParentMechanism::QaNt, 1);
        let bids = vec![
            bid(&[10], &[1.0]), // expensive
            bid(&[10], &[0.0]), // cheap
        ];
        let out = m.clear(&bids, &[12]);
        assert_eq!(out.allocations[1][0], 10, "cheap broker filled first");
        assert_eq!(out.allocations[0][0], 2, "expensive broker takes the rest");
        assert_eq!(out.unserved[0], 0);
        check_conservation(&bids, &[12], &out);
    }

    #[test]
    fn qant_tie_breaks_by_broker_index() {
        let mut m = market(ParentMechanism::QaNt, 1);
        let bids = vec![bid(&[5], &[0.5]), bid(&[5], &[0.5])];
        let out = m.clear(&bids, &[3]);
        assert_eq!(out.allocations[0][0], 3);
        assert_eq!(out.allocations[1][0], 0);
    }

    #[test]
    fn qant_excess_demand_raises_parent_price() {
        let mut m = market(ParentMechanism::QaNt, 1);
        let bids = vec![bid(&[4], &[0.0])];
        let before = {
            let mut p = [0.0];
            m.ln_prices_into(&mut p);
            p[0]
        };
        let out = m.clear(&bids, &[10]);
        assert_eq!(out.unserved[0], 6);
        assert!(out.ln_prices[0] > before, "unmet demand must raise price");
        check_conservation(&bids, &[10], &out);
    }

    #[test]
    fn qant_unsold_capacity_lowers_parent_price() {
        let mut m = market(ParentMechanism::QaNt, 1);
        let bids = vec![bid(&[100], &[0.0])];
        let out = m.clear(&bids, &[10]);
        assert_eq!(out.unserved[0], 0);
        assert!(
            out.ln_prices[0] < 0.0,
            "unsold capacity must lower the price below ln(1)=0"
        );
        // The leftover signal saturates: one idle window must not collapse
        // the price to the floor.
        assert!(out.ln_prices[0] > 1e-9f64.ln());
    }

    #[test]
    fn walras_converges_between_reservations() {
        let mut m = market(ParentMechanism::Walras, 1);
        let bids = vec![
            bid(&[100], &[0.0]),
            bid(&[100], &[10.0f64.ln()]), // 10× more expensive
        ];
        // Demand equals the cheap broker's capacity: the clearing price
        // settles near (below) the cheap reservation and most allocation
        // lands on the cheap broker.
        let out = m.clear(&bids, &[100]);
        assert!(out.rounds > 0, "tâtonnement must iterate");
        assert!(out.allocations[0][0] > out.allocations[1][0]);
        assert!(
            out.unserved[0] <= 10,
            "should clear within ~tolerance, unserved {}",
            out.unserved[0]
        );
        check_conservation(&bids, &[100], &out);
    }

    #[test]
    fn walras_overload_pins_ceiling_and_escalates() {
        let mut m = market(ParentMechanism::Walras, 1);
        let bids = vec![bid(&[10], &[0.0]), bid(&[10], &[0.5])];
        let out = m.clear(&bids, &[100]);
        assert_eq!(out.allocations[0][0] + out.allocations[1][0], 20);
        assert_eq!(out.unserved[0], 80);
        assert!(
            out.ln_prices[0] > 1.0,
            "sustained excess demand must push the price up"
        );
        check_conservation(&bids, &[100], &out);
    }

    #[test]
    fn walras_zero_demand_class_keeps_warm_price() {
        let mut m = market(ParentMechanism::Walras, 2);
        let bids = vec![bid(&[10, 10], &[0.3, 0.7])];
        let first = m.clear(&bids, &[8, 0]);
        assert_eq!(first.unserved[1], 0);
        let idle_price = first.ln_prices[1];
        let second = m.clear(&bids, &[8, 0]);
        assert_eq!(
            second.ln_prices[1], idle_price,
            "idle class price must not drift"
        );
    }

    #[test]
    fn walras_warm_start_converges_faster() {
        let mut m = market(ParentMechanism::Walras, 1);
        let bids = vec![bid(&[50], &[2.0]), bid(&[50], &[3.0])];
        let cold = m.clear(&bids, &[60]).rounds;
        let warm = m.clear(&bids, &[60]).rounds;
        assert!(
            warm <= cold,
            "warm start ({warm} rounds) must not exceed cold start ({cold})"
        );
    }

    #[test]
    fn both_mechanisms_conserve_on_mixed_load() {
        for mech in [ParentMechanism::QaNt, ParentMechanism::Walras] {
            let mut m = market(mech, 3);
            let bids = vec![
                bid(&[5, 0, 40], &[0.2, 0.0, 1.4]),
                bid(&[0, 9, 3], &[0.0, 2.2, 0.1]),
                bid(&[7, 7, 7], &[1.0, 1.0, 1.0]),
            ];
            for demand in [[0u64, 0, 0], [12, 3, 60], [1, 99, 2]] {
                let out = m.clear(&bids, &demand);
                check_conservation(&bids, &demand, &out);
            }
        }
    }

    #[test]
    fn clearing_is_deterministic() {
        for mech in [ParentMechanism::QaNt, ParentMechanism::Walras] {
            let run = || {
                let mut m = market(mech, 2);
                let bids = vec![bid(&[8, 2], &[0.1, 0.9]), bid(&[3, 11], &[0.6, 0.2])];
                let a = m.clear(&bids, &[5, 9]);
                let b = m.clear(&bids, &[9, 5]);
                format!("{a:?}|{b:?}")
            };
            assert_eq!(run(), run());
        }
    }

    #[test]
    #[should_panic(expected = "no brokers")]
    fn clearing_requires_brokers() {
        let mut m = market(ParentMechanism::QaNt, 1);
        let _ = m.clear(&[], &[1]);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn config_validation_rejects_bad_tolerance() {
        let cfg = ParentMarketConfig {
            tolerance: 0.0,
            ..ParentMarketConfig::default()
        };
        let _ = ParentMarket::new(1, cfg);
    }
}
