//! Excess demand and competitive equilibrium (Definitions 2 and 3).
//!
//! For prices `p⃗`, the excess demand of class `k` is
//! `zₖ(p⃗) = Σᵢ dᵢₖ − sᵢₖ`: positive when buyers want more class-k queries
//! evaluated than sellers offer, negative when supply exceeds demand. The
//! market is in competitive equilibrium when `z(p⃗*) = 0⃗`, at which point —
//! by the First Theorem of Welfare Economics — the induced allocation is
//! Pareto optimal.

use crate::vectors::QuantityVector;
use std::fmt;

/// A signed per-class vector `z(p⃗) ∈ Z^K`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExcessVector(Vec<i64>);

impl ExcessVector {
    /// Builds from raw signed counts.
    pub fn from_values(values: Vec<i64>) -> Self {
        ExcessVector(values)
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.0.len()
    }

    /// Excess demand for class `k`.
    pub fn get(&self, k: usize) -> i64 {
        self.0[k]
    }

    /// `true` iff all components are zero — Definition 3's equilibrium
    /// condition `z(p⃗*) = 0`.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&z| z == 0)
    }

    /// L1 norm `Σ |zₖ|` — the distance-from-equilibrium measure used by the
    /// tâtonnement convergence tests.
    pub fn l1_norm(&self) -> u64 {
        self.0.iter().map(|z| z.unsigned_abs()).sum()
    }

    /// Iterates `(class, excess)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, i64)> + '_ {
        self.0.iter().copied().enumerate()
    }

    /// The raw values.
    pub fn as_slice(&self) -> &[i64] {
        &self.0
    }
}

impl fmt::Display for ExcessVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, z) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{z:+}")?;
        }
        write!(f, ")")
    }
}

/// Computes `z = Σᵢ (d⃗ᵢ − s⃗ᵢ)` from per-node demand and supply vectors
/// (Definition 2).
pub fn excess_demand(demands: &[QuantityVector], supplies: &[QuantityVector]) -> ExcessVector {
    assert_eq!(demands.len(), supplies.len(), "node count mismatch");
    assert!(!demands.is_empty(), "empty economy");
    let d = QuantityVector::aggregate(demands);
    let s = QuantityVector::aggregate(supplies);
    assert_eq!(d.num_classes(), s.num_classes(), "class count mismatch");
    ExcessVector(
        d.iter()
            .zip(s.iter())
            .map(|((_, dk), (_, sk))| dk as i64 - sk as i64)
            .collect(),
    )
}

/// `true` iff the given demand/supply profile is a competitive equilibrium
/// (Definition 3).
pub fn is_equilibrium(demands: &[QuantityVector], supplies: &[QuantityVector]) -> bool {
    excess_demand(demands, supplies).is_zero()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qv(v: &[u64]) -> QuantityVector {
        QuantityVector::from_counts(v.to_vec())
    }

    #[test]
    fn excess_demand_of_paper_example() {
        // Demand aggregate (2,6); LB supply aggregate (2,1): z = (0, +5).
        let demands = [qv(&[1, 6]), qv(&[1, 0])];
        let lb_supplies = [qv(&[1, 1]), qv(&[1, 0])];
        let z = excess_demand(&demands, &lb_supplies);
        assert_eq!(z.as_slice(), &[0, 5]);
        assert!(!z.is_zero());
        assert_eq!(z.l1_norm(), 5);
    }

    #[test]
    fn oversupply_is_negative() {
        let demands = [qv(&[1, 0])];
        let supplies = [qv(&[3, 0])];
        let z = excess_demand(&demands, &supplies);
        assert_eq!(z.get(0), -2);
    }

    #[test]
    fn equilibrium_detection() {
        let demands = [qv(&[2, 3]), qv(&[1, 0])];
        let supplies = [qv(&[0, 3]), qv(&[3, 0])];
        assert!(is_equilibrium(&demands, &supplies));
        let short = [qv(&[0, 3]), qv(&[2, 0])];
        assert!(!is_equilibrium(&demands, &short));
    }

    #[test]
    fn l1_norm_counts_both_signs() {
        let z = ExcessVector::from_values(vec![-3, 4, 0]);
        assert_eq!(z.l1_norm(), 7);
    }

    #[test]
    fn display_shows_signs() {
        let z = ExcessVector::from_values(vec![-1, 2]);
        assert_eq!(z.to_string(), "(-1, +2)");
    }

    #[test]
    #[should_panic(expected = "node count mismatch")]
    fn mismatched_nodes_panic() {
        let _ = excess_demand(&[qv(&[1])], &[]);
    }
}
