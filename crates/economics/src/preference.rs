//! Preference relations over consumption vectors.
//!
//! §2.2: when aggregate demand exceeds what the system can supply, each node
//! ranks possible consumption vectors by a preference relation `⪰ᵢ`. The
//! paper assumes throughput preference — "all nodes prefer to evaluate as
//! many queries as possible, independent of what these queries are":
//! `c⃗ ⪰ᵢ c⃗′ iff Σₖ cₖ ≥ Σₖ c′ₖ`. We expose preferences as utility
//! functions (a standard representation of complete, transitive
//! preferences), plus the weighted and equitable variants mentioned in the
//! related/future-work sections.

use crate::vectors::QuantityVector;

/// A complete, transitive preference relation represented by a utility
/// function: `a ⪰ b iff utility(a) ≥ utility(b)`.
pub trait Preference {
    /// Utility of a consumption vector. Higher is better.
    fn utility(&self, c: &QuantityVector) -> f64;

    /// Weak preference `a ⪰ b`.
    fn prefers(&self, a: &QuantityVector, b: &QuantityVector) -> bool {
        self.utility(a) >= self.utility(b) - 1e-12
    }

    /// Strict preference `a ≻ b`.
    fn strictly_prefers(&self, a: &QuantityVector, b: &QuantityVector) -> bool {
        self.utility(a) > self.utility(b) + 1e-12
    }

    /// Indifference `a ~ b`.
    fn indifferent(&self, a: &QuantityVector, b: &QuantityVector) -> bool {
        (self.utility(a) - self.utility(b)).abs() <= 1e-12
    }
}

/// The paper's preference: maximize the total number of queries consumed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThroughputPreference;

impl Preference for ThroughputPreference {
    fn utility(&self, c: &QuantityVector) -> f64 {
        c.total() as f64
    }
}

/// A weighted variant: classes may matter differently (e.g. interactive
/// queries weigh more than batch reports).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedPreference {
    weights: Vec<f64>,
}

impl WeightedPreference {
    /// Builds from per-class weights.
    ///
    /// # Panics
    /// Panics if any weight is negative or not finite.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be non-negative and finite"
        );
        WeightedPreference { weights }
    }
}

impl Preference for WeightedPreference {
    fn utility(&self, c: &QuantityVector) -> f64 {
        assert_eq!(c.num_classes(), self.weights.len(), "class count mismatch");
        c.iter().map(|(k, n)| self.weights[k] * n as f64).sum()
    }
}

/// Equitable preference (§6 future work: "the constraint of equitable
/// allocation, in which the utility of all nodes is equalized").
///
/// Utility is concave in the total — `sqrt(Σc)` — so that, when comparing
/// *system-wide* allocations by summed utilities, spreading consumption
/// across nodes beats concentrating it. Used by the equitable-allocation
/// extension experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EquitablePreference;

impl Preference for EquitablePreference {
    fn utility(&self, c: &QuantityVector) -> f64 {
        (c.total() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qv(v: &[u64]) -> QuantityVector {
        QuantityVector::from_counts(v.to_vec())
    }

    #[test]
    fn throughput_compares_totals_only() {
        let p = ThroughputPreference;
        // (5,0) ~ (0,5): same total, mutually weakly preferred.
        assert!(p.prefers(&qv(&[5, 0]), &qv(&[0, 5])));
        assert!(p.prefers(&qv(&[0, 5]), &qv(&[5, 0])));
        assert!(p.indifferent(&qv(&[5, 0]), &qv(&[0, 5])));
        assert!(p.strictly_prefers(&qv(&[3, 3]), &qv(&[5, 0])));
        assert!(!p.strictly_prefers(&qv(&[5, 0]), &qv(&[5, 0])));
    }

    #[test]
    fn paper_example_preference() {
        // §2.2: QA gives N1 consumption 5, LB gives 2 — N1 strictly
        // prefers the QA vector.
        let p = ThroughputPreference;
        assert!(p.strictly_prefers(&qv(&[1, 4]), &qv(&[1, 1])));
    }

    #[test]
    fn weighted_orders_by_weights() {
        let p = WeightedPreference::new(vec![10.0, 1.0]);
        assert!(p.strictly_prefers(&qv(&[1, 0]), &qv(&[0, 5])));
        assert!(p.indifferent(&qv(&[1, 0]), &qv(&[0, 10])));
    }

    #[test]
    fn weighted_with_unit_weights_equals_throughput() {
        let w = WeightedPreference::new(vec![1.0, 1.0, 1.0]);
        let t = ThroughputPreference;
        for a in [[0, 1, 2], [3, 0, 0], [1, 1, 1]] {
            for b in [[2, 2, 2], [0, 0, 1], [1, 0, 3]] {
                let (a, b) = (qv(&a), qv(&b));
                assert_eq!(w.prefers(&a, &b), t.prefers(&a, &b));
            }
        }
    }

    #[test]
    fn equitable_is_concave() {
        let p = EquitablePreference;
        // Marginal utility of consumption decreases: 0→4 gains 2,
        // 4→8 gains less.
        let gain_low = p.utility(&qv(&[4])) - p.utility(&qv(&[0]));
        let gain_high = p.utility(&qv(&[8])) - p.utility(&qv(&[4]));
        assert!(gain_low > gain_high);
        // Summed over two nodes, an even split dominates a skewed one.
        let even = p.utility(&qv(&[4])) + p.utility(&qv(&[4]));
        let skew = p.utility(&qv(&[8])) + p.utility(&qv(&[0]));
        assert!(even > skew);
    }

    #[test]
    fn preference_is_transitive_on_samples() {
        let p = ThroughputPreference;
        let vs = [
            qv(&[0, 0]),
            qv(&[1, 0]),
            qv(&[1, 1]),
            qv(&[3, 0]),
            qv(&[2, 2]),
        ];
        for a in &vs {
            for b in &vs {
                for c in &vs {
                    if p.prefers(a, b) && p.prefers(b, c) {
                        assert!(p.prefers(a, c), "transitivity violated");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn weighted_rejects_negative() {
        let _ = WeightedPreference::new(vec![-1.0]);
    }
}
