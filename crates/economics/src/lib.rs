//! # qa-economics — microeconomics substrate for query markets
//!
//! Implements the economic machinery of *Autonomic Query Allocation based on
//! Microeconomics Principles* (Pentaris & Ioannidis, ICDE 2007), Sections 2–3:
//!
//! * [`QuantityVector`] — the paper's demand (`d⃗`), supply (`s⃗`) and
//!   consumption (`c⃗`) vectors over `N^K` (K query classes),
//! * [`PriceVector`] — virtual prices `p⃗ ∈ R₊^K` with value products
//!   `p⃗·s⃗`,
//! * [`supply`] — supply sets `Sᵢ` (the feasible supply vectors of a node)
//!   and the profit-maximisation problem of eq. (4),
//! * [`preference`] — preference relations `⪰ᵢ` over consumption vectors,
//!   including the paper's throughput preference
//!   (`c⃗ ⪰ c⃗′  iff  Σc ≥ Σc′`) and the future-work equitable variant,
//! * [`pareto`] — Pareto dominance and optimality (Definition 1), with a
//!   brute-force optimal enumerator for small economies used by tests,
//! * [`market`] — excess demand `z(p⃗)` (Definition 2) and competitive
//!   equilibrium (Definition 3),
//! * [`tatonnement`] — the classical centralized umpire iteration
//!   `p(t+1) = p(t) + λ·z(p(t))` (eq. 6),
//! * [`non_tatonnement`] — the decentralized per-node price adjustment used
//!   by the QA-NT algorithm (reject ⇒ raise, leftover supply ⇒ lower) and
//!   the Definition-4 trading-rule checks,
//! * [`parent`] — the hierarchical tier: a parent market that clears shard
//!   broker bids (QA-NT at the broker tier, or a WALRAS-style tâtonnement
//!   over aggregate supply curves),
//! * [`welfare`] — empirical First-Theorem-of-Welfare-Economics checks used
//!   by the test suite.
//!
//! This crate is independent of queries and databases: it speaks only of
//! commodities, prices, buyers and sellers. `qa-core` maps the QA problem
//! onto it (Table 1 of the paper).

pub mod market;
pub mod non_tatonnement;
pub mod parent;
pub mod pareto;
pub mod preference;
pub mod supply;
pub mod tatonnement;
pub mod vectors;
pub mod welfare;

pub use market::{excess_demand, is_equilibrium, ExcessVector};
pub use non_tatonnement::{trade_exhausts_pair, trade_is_feasible};
pub use non_tatonnement::{NonTatonnementPricer, PricerConfig};
pub use parent::{BrokerBid, ClearingOutcome, ParentMarket, ParentMarketConfig, ParentMechanism};
pub use pareto::{dominates, enumerate_solutions, is_pareto_optimal, Solution};
pub use preference::{EquitablePreference, Preference, ThroughputPreference, WeightedPreference};
pub use supply::{
    price_density_order_into, solve_supply_fractional, solve_supply_fractional_cached,
    solve_supply_greedy, solve_supply_greedy_cached, solve_supply_optimal, DensityOrderCache,
    EnumeratedSupplySet, LinearCapacitySet, SupplySet,
};
pub use tatonnement::{Tatonnement, TatonnementOutcome};
pub use vectors::{PriceVector, QuantityVector};
pub use welfare::{check_ftwe, split_supply_to_consumptions, FtweCheck};
