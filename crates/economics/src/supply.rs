//! Supply sets and the seller's profit-maximisation problem (eq. 4).
//!
//! The paper defines a node's *supply set* `Sᵢ` as the set of feasible
//! supply vectors given its hardware resources (§2.2). Each period the
//! selfish seller picks `s⃗ᵢ* = argmax_{s⃗∈Sᵢ} p⃗·s⃗` (eq. 4).
//!
//! We model `Sᵢ` as a time-capacity polytope: executing one class-`k` query
//! costs the node `t_ik` time units, the period is `T` long, so
//! `Sᵢ = { s⃗ ∈ N^K : Σₖ sₖ·t_ik ≤ T }` with `sₖ = 0` forced for classes
//! the node cannot evaluate at all (no local data). That makes eq. 4 an
//! unbounded integer knapsack. Two solvers are provided:
//!
//! * [`solve_supply_greedy`] — the first-order-conditions solver the paper
//!   implies: fill capacity in descending *price density* `pₖ / t_ik`. Its
//!   integer rounding is exactly the error source the paper blames for
//!   Greedy's ~5 % edge at low loads (§5.1).
//! * [`solve_supply_optimal`] — exact dynamic program, used by tests to
//!   bound the greedy gap and by the ablation bench.

use crate::vectors::{PriceVector, QuantityVector};

/// A set of feasible supply vectors.
pub trait SupplySet {
    /// Number of commodity classes.
    fn num_classes(&self) -> usize;

    /// `true` iff `s` is a feasible supply vector.
    fn contains(&self, s: &QuantityVector) -> bool;

    /// `true` iff supply could grow by one unit of class `k` from `s` and
    /// stay feasible. Default: test `s + eₖ`. Implementors with structure
    /// should override this — the default clones the whole vector per
    /// probe, and QA-NT deal admission ([`crate::trade_exhausts_pair`])
    /// probes every class of every candidate trade.
    fn can_add(&self, s: &QuantityVector, k: usize) -> bool {
        let mut grown = s.clone();
        grown.add_units(k, 1);
        self.contains(&grown)
    }
}

/// The time-capacity polytope `{ s : Σ sₖ·tₖ ≤ capacity }`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearCapacitySet {
    /// Per-class unit cost `t_ik` (time to run one class-k query on this
    /// node); `None` for classes the node cannot evaluate.
    unit_costs: Vec<Option<f64>>,
    /// Total capacity `T` in the same time units.
    capacity: f64,
}

impl LinearCapacitySet {
    /// Builds a capacity set.
    ///
    /// # Panics
    /// Panics if `capacity` is negative/non-finite or any present cost is
    /// not strictly positive and finite.
    pub fn new(unit_costs: Vec<Option<f64>>, capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity >= 0.0,
            "bad capacity {capacity}"
        );
        assert!(
            unit_costs
                .iter()
                .flatten()
                .all(|t| t.is_finite() && *t > 0.0),
            "unit costs must be positive and finite"
        );
        LinearCapacitySet {
            unit_costs,
            capacity,
        }
    }

    /// The per-class unit costs.
    pub fn unit_costs(&self) -> &[Option<f64>] {
        &self.unit_costs
    }

    /// The capacity `T`.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Time consumed by supply vector `s`.
    pub fn load_of(&self, s: &QuantityVector) -> f64 {
        s.iter()
            .map(|(k, c)| match self.unit_costs[k] {
                Some(t) => t * c as f64,
                None => {
                    if c > 0 {
                        f64::INFINITY
                    } else {
                        0.0
                    }
                }
            })
            .sum()
    }
}

impl SupplySet for LinearCapacitySet {
    fn num_classes(&self) -> usize {
        self.unit_costs.len()
    }

    fn contains(&self, s: &QuantityVector) -> bool {
        assert_eq!(s.num_classes(), self.num_classes());
        // A tiny epsilon absorbs float accumulation; capacities are real
        // times (ms), unit counts small integers.
        self.load_of(s) <= self.capacity * (1.0 + 1e-12) + 1e-9
    }

    /// Allocation-free override of the default `s + eₖ` probe: growing by
    /// one class-`k` unit adds exactly `t_k` load, so feasibility is
    /// `load_of(s) + t_k ≤ T` (same epsilon as [`Self::contains`]).
    fn can_add(&self, s: &QuantityVector, k: usize) -> bool {
        match self.unit_costs[k] {
            None => false,
            Some(t) => self.load_of(s) + t <= self.capacity * (1.0 + 1e-12) + 1e-9,
        }
    }
}

/// An explicitly enumerated supply set — used in unit tests and by the
/// brute-force Pareto enumerator on small economies.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumeratedSupplySet {
    k: usize,
    vectors: Vec<QuantityVector>,
}

impl EnumeratedSupplySet {
    /// Builds from an explicit list of feasible vectors. The zero vector is
    /// added automatically (a node may always supply nothing).
    pub fn new(k: usize, mut vectors: Vec<QuantityVector>) -> Self {
        assert!(vectors.iter().all(|v| v.num_classes() == k));
        let zero = QuantityVector::zeros(k);
        if !vectors.contains(&zero) {
            vectors.push(zero);
        }
        EnumeratedSupplySet { k, vectors }
    }

    /// All feasible vectors.
    pub fn vectors(&self) -> &[QuantityVector] {
        &self.vectors
    }
}

impl SupplySet for EnumeratedSupplySet {
    fn num_classes(&self) -> usize {
        self.k
    }

    fn contains(&self, s: &QuantityVector) -> bool {
        self.vectors.contains(s)
    }
}

/// Enumerates every feasible supply vector of a [`LinearCapacitySet`]
/// (bounded per class by `caps` when given). Exponential — only for the
/// small economies in tests.
pub fn enumerate_capacity_set(
    set: &LinearCapacitySet,
    caps: Option<&QuantityVector>,
) -> Vec<QuantityVector> {
    let k = set.num_classes();
    let mut out = Vec::new();
    let mut cur = QuantityVector::zeros(k);
    fn rec(
        set: &LinearCapacitySet,
        caps: Option<&QuantityVector>,
        cur: &mut QuantityVector,
        class: usize,
        out: &mut Vec<QuantityVector>,
    ) {
        if class == set.num_classes() {
            out.push(cur.clone());
            return;
        }
        let mut n = 0;
        loop {
            cur.set(class, n);
            if !set.contains(cur) || caps.is_some_and(|c| n > c.get(class)) {
                break;
            }
            rec(set, caps, cur, class + 1, out);
            if set.unit_costs()[class].is_none() {
                break; // cannot supply this class at all
            }
            n += 1;
        }
        cur.set(class, 0);
    }
    rec(set, caps, &mut cur, 0, &mut out);
    out
}

/// Fills `out` with the indices of the supplyable classes (those with a
/// unit cost) in descending *price density* `pₖ / tₖ`, ties broken by
/// class index for determinism.
///
/// This is the ordering both eq.-4 solvers fill capacity in. It reuses the
/// caller's scratch vector — no per-call allocation once the scratch has
/// grown to the class count.
pub fn price_density_order_into(
    prices: &PriceVector,
    unit_costs: &[Option<f64>],
    out: &mut Vec<usize>,
) {
    assert_eq!(
        prices.num_classes(),
        unit_costs.len(),
        "class count mismatch"
    );
    out.clear();
    out.extend((0..unit_costs.len()).filter(|&i| unit_costs[i].is_some()));
    out.sort_by(|&a, &b| {
        let da = prices.get(a) / unit_costs[a].expect("filtered");
        let db = prices.get(b) / unit_costs[b].expect("filtered");
        // total_cmp, not partial_cmp: an all-zero price vector is legal
        // (densities 0.0 compare equal, class index breaks the tie) and
        // must not panic the solver.
        db.total_cmp(&da).then(a.cmp(&b))
    });
}

/// A memoized price-density ordering.
///
/// The supply solvers re-sort classes by `pₖ / tₖ` on every solve, but in
/// the simulator a node's prices only move when the market does (rejections
/// or leftover supply) and its unit costs rarely change at all — so across
/// quiet periods the ordering is identical. This cache keys the ordering on
/// the exact `(prices, unit_costs)` pair and re-sorts only when either
/// changed: an `O(K)` equality scan instead of an `O(K log K)` sort with a
/// division per comparison. All vectors are reused across calls, so a
/// steady-state solve allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct DensityOrderCache {
    order: Vec<usize>,
    prices: Vec<f64>,
    unit_costs: Vec<Option<f64>>,
    valid: bool,
}

impl DensityOrderCache {
    /// An empty cache; the first [`Self::order`] call computes.
    pub fn new() -> Self {
        Self::default()
    }

    /// The density ordering for `(prices, unit_costs)`, recomputed only
    /// when either differs from the cached pair. (Prices are finite by
    /// `PriceVector` invariant, so the float equality scan is exact.)
    pub fn order(&mut self, prices: &PriceVector, unit_costs: &[Option<f64>]) -> &[usize] {
        let hit = self.valid && self.prices == prices.as_slice() && self.unit_costs == unit_costs;
        if !hit {
            price_density_order_into(prices, unit_costs, &mut self.order);
            self.prices.clear();
            self.prices.extend_from_slice(prices.as_slice());
            self.unit_costs.clear();
            self.unit_costs.extend_from_slice(unit_costs);
            self.valid = true;
        }
        &self.order
    }

    /// Drops the memo; the next [`Self::order`] call re-sorts.
    pub fn invalidate(&mut self) {
        self.valid = false;
    }
}

/// The integer greedy fill over a precomputed density ordering — the body
/// shared by [`solve_supply_greedy`] and [`solve_supply_greedy_cached`].
fn greedy_fill(
    set: &LinearCapacitySet,
    caps: Option<&QuantityVector>,
    order: &[usize],
) -> QuantityVector {
    let mut supply = QuantityVector::zeros(set.num_classes());
    let mut remaining = set.capacity();
    for &i in order {
        let t = set.unit_costs()[i].expect("ordered classes have costs");
        let mut fit = (remaining / t).floor() as u64;
        if let Some(c) = caps {
            fit = fit.min(c.get(i));
        }
        if fit > 0 {
            supply.add_units(i, fit);
            remaining -= fit as f64 * t;
        }
    }
    debug_assert!(set.contains(&supply));
    supply
}

/// The fractional fill over a precomputed density ordering — the body
/// shared by [`solve_supply_fractional`] and
/// [`solve_supply_fractional_cached`].
fn fractional_fill(set: &LinearCapacitySet, caps: Option<&[f64]>, order: &[usize]) -> Vec<f64> {
    let mut supply = vec![0.0; set.num_classes()];
    let mut remaining = set.capacity();
    for &i in order {
        if remaining <= 0.0 {
            break;
        }
        let t = set.unit_costs()[i].expect("ordered classes have costs");
        let mut amount = remaining / t;
        if let Some(c) = caps {
            amount = amount.min(c[i]);
        }
        if amount > 0.0 {
            supply[i] = amount;
            remaining -= amount * t;
        }
    }
    supply
}

/// Greedy first-order-conditions solver for eq. 4.
///
/// Fills the capacity in descending price density `pₖ / tₖ`, taking as many
/// whole units of the densest class as fit, then the next, and so on.
/// Optional `caps` bounds the per-class supply (a node that has seen demand
/// for at most `caps[k]` class-k queries has no reason to reserve more).
///
/// Sorts on every call; hot-path callers that solve repeatedly under
/// slow-moving prices should use [`solve_supply_greedy_cached`].
pub fn solve_supply_greedy(
    prices: &PriceVector,
    set: &LinearCapacitySet,
    caps: Option<&QuantityVector>,
) -> QuantityVector {
    let mut order = Vec::new();
    price_density_order_into(prices, set.unit_costs(), &mut order);
    greedy_fill(set, caps, &order)
}

/// [`solve_supply_greedy`] with a memoized density ordering: the class
/// re-sort happens only when `prices` (or the set's unit costs) changed
/// since the cache last saw them. Byte-identical results to the uncached
/// solver at every call.
pub fn solve_supply_greedy_cached(
    prices: &PriceVector,
    set: &LinearCapacitySet,
    caps: Option<&QuantityVector>,
    cache: &mut DensityOrderCache,
) -> QuantityVector {
    let order = cache.order(prices, set.unit_costs());
    greedy_fill(set, caps, order)
}

/// Fractional (LP-relaxation) solver for eq. 4.
///
/// Fills capacity in descending price density with *real-valued* amounts:
/// the densest class absorbs everything up to its cap, then the next, and
/// the final class may receive a fractional amount. This is the true
/// first-order-conditions optimum of the relaxed problem; QA-NT rounds it
/// to integers per period with an error-diffusion carry, which is exactly
/// the rounding the paper blames for its ~5 % loss at light loads (§5.1).
///
/// Sorts on every call; hot-path callers should use
/// [`solve_supply_fractional_cached`].
pub fn solve_supply_fractional(
    prices: &PriceVector,
    set: &LinearCapacitySet,
    caps: Option<&[f64]>,
) -> Vec<f64> {
    if let Some(c) = caps {
        assert_eq!(c.len(), set.num_classes());
    }
    let mut order = Vec::new();
    price_density_order_into(prices, set.unit_costs(), &mut order);
    fractional_fill(set, caps, &order)
}

/// [`solve_supply_fractional`] with a memoized density ordering (see
/// [`solve_supply_greedy_cached`]).
pub fn solve_supply_fractional_cached(
    prices: &PriceVector,
    set: &LinearCapacitySet,
    caps: Option<&[f64]>,
    cache: &mut DensityOrderCache,
) -> Vec<f64> {
    if let Some(c) = caps {
        assert_eq!(c.len(), set.num_classes());
    }
    let order = cache.order(prices, set.unit_costs());
    fractional_fill(set, caps, order)
}

/// Exact solver for eq. 4 by dynamic programming over discretized capacity.
///
/// Capacity and unit costs are discretized to `resolution` steps (costs
/// round *up*, so the result is always feasible). With `caps` given it is a
/// bounded knapsack, otherwise unbounded. Exact up to discretization;
/// intended for tests and ablations, not the hot path.
pub fn solve_supply_optimal(
    prices: &PriceVector,
    set: &LinearCapacitySet,
    caps: Option<&QuantityVector>,
    resolution: usize,
) -> QuantityVector {
    let k = set.num_classes();
    assert_eq!(prices.num_classes(), k, "class count mismatch");
    assert!(resolution > 0);
    if set.capacity() <= 0.0 {
        return QuantityVector::zeros(k);
    }
    let step = set.capacity() / resolution as f64;
    let cost_steps: Vec<Option<usize>> = set
        .unit_costs()
        .iter()
        .map(|c| c.map(|t| ((t / step).ceil() as usize).max(1)))
        .collect();

    // value[w] = best value using ≤ w capacity steps; choice[w] = (class,
    // prev_w) used to reconstruct.
    let w_max = resolution;
    let mut value = vec![0.0_f64; w_max + 1];
    let mut choice: Vec<Option<(usize, usize)>> = vec![None; w_max + 1];

    if let Some(caps) = caps {
        // Bounded: iterate classes, then units (binary splitting is overkill
        // at test scale).
        for (i, &step) in cost_steps.iter().enumerate() {
            let Some(ci) = step else { continue };
            let pi = prices.get(i);
            for _ in 0..caps.get(i) {
                // One more unit of class i; iterate weights descending so the
                // unit is used at most once per pass.
                let mut improved = false;
                for w in (ci..=w_max).rev() {
                    let cand = value[w - ci] + pi;
                    if cand > value[w] + 1e-12 {
                        value[w] = cand;
                        choice[w] = Some((i, w - ci));
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
        }
        // Reconstruction for bounded case is tricky with in-place passes, so
        // recompute greedily from the DP values via a fresh exact search at
        // small scale instead: fall back to enumeration when K and caps are
        // small (tests only use it that way).
        let vectors = enumerate_capacity_set(set, Some(caps));
        return vectors
            .into_iter()
            .max_by(|a, b| {
                prices
                    .value_of(a)
                    .total_cmp(&prices.value_of(b))
                    .then_with(|| a.total().cmp(&b.total()))
            })
            .expect("enumeration always contains the zero vector");
    }

    // Unbounded knapsack DP with reconstruction.
    for w in 1..=w_max {
        for (i, &step) in cost_steps.iter().enumerate() {
            let Some(ci) = step else { continue };
            if ci <= w {
                let cand = value[w - ci] + prices.get(i);
                if cand > value[w] + 1e-12 {
                    value[w] = cand;
                    choice[w] = Some((i, w - ci));
                }
            }
        }
    }
    // The best value may be reached below w_max.
    let mut best_w = 0;
    for w in 0..=w_max {
        if value[w] > value[best_w] + 1e-12 {
            best_w = w;
        }
    }
    let mut supply = QuantityVector::zeros(k);
    let mut w = best_w;
    while let Some((i, prev)) = choice[w] {
        supply.add_units(i, 1);
        w = prev;
    }
    debug_assert!(set.contains(&supply));
    supply
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qv(v: &[u64]) -> QuantityVector {
        QuantityVector::from_counts(v.to_vec())
    }

    /// Node N1 of the paper's running example: q1 = 400 ms, q2 = 100 ms,
    /// period T = 500 ms.
    fn n1() -> LinearCapacitySet {
        LinearCapacitySet::new(vec![Some(400.0), Some(100.0)], 500.0)
    }

    #[test]
    fn capacity_membership() {
        let s = n1();
        assert!(s.contains(&qv(&[1, 1]))); // 400 + 100 = 500 ≤ 500
        assert!(s.contains(&qv(&[0, 5]))); // 500 ≤ 500
        assert!(!s.contains(&qv(&[1, 2]))); // 600 > 500
        assert!(s.contains(&qv(&[0, 0])));
    }

    #[test]
    fn impossible_class_forces_zero() {
        let s = LinearCapacitySet::new(vec![Some(100.0), None], 1_000.0);
        assert!(s.contains(&qv(&[10, 0])));
        assert!(!s.contains(&qv(&[0, 1])));
        assert!(!s.can_add(&qv(&[0, 0]), 1));
    }

    #[test]
    fn greedy_follows_price_density() {
        // Equal prices (1,1): density q2 = 1/100 > q1 = 1/400, so N1
        // supplies only q2 — exactly the paper's §3.3 walkthrough.
        let p = PriceVector::uniform(2, 1.0);
        let s = solve_supply_greedy(&p, &n1(), None);
        assert_eq!(s, qv(&[0, 5]));
    }

    #[test]
    fn greedy_switches_when_q1_price_rises() {
        // "prices of q1 queries will start increasing until node N1 starts
        // to also supply q1" — at p1/t1 > p2/t2 i.e. p1 > 4, q1 dominates.
        let p = PriceVector::from_prices(vec![4.5, 1.0]);
        let s = solve_supply_greedy(&p, &n1(), None);
        assert_eq!(s.get(0), 1, "one q1 fits in 500ms");
        assert_eq!(s.get(1), 1, "remaining 100ms fits one q2");
    }

    #[test]
    fn greedy_respects_caps() {
        let p = PriceVector::uniform(2, 1.0);
        let caps = qv(&[0, 2]);
        let s = solve_supply_greedy(&p, &n1(), Some(&caps));
        assert_eq!(s, qv(&[0, 2]));
    }

    #[test]
    fn zero_price_vector_solves_without_panic() {
        // Regression: the density sort used `partial_cmp().expect(...)` and
        // the constructor rejected zero prices, so an all-zero vector could
        // never reach (let alone survive) a solve. With zero prices every
        // density is 0.0; ties break by class index, so greedy fills the
        // first class first.
        let p = PriceVector::from_prices(vec![0.0, 0.0]);
        let s = solve_supply_greedy(&p, &n1(), None);
        assert_eq!(s, qv(&[1, 1]), "class order breaks the all-zero tie");
        let o = solve_supply_optimal(&p, &n1(), Some(&qv(&[2, 2])), 1_000);
        assert!(n1().contains(&o));
        let mut order = Vec::new();
        price_density_order_into(&p, &[Some(400.0), Some(100.0)], &mut order);
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn greedy_never_exceeds_capacity() {
        let set = LinearCapacitySet::new(vec![Some(7.0), Some(3.0), Some(11.0)], 100.0);
        let p = PriceVector::from_prices(vec![5.0, 2.0, 9.0]);
        let s = solve_supply_greedy(&p, &set, None);
        assert!(set.contains(&s));
    }

    #[test]
    fn optimal_beats_or_matches_greedy() {
        // Classic knapsack instance where density-greedy is suboptimal:
        // capacity 10, items (cost 6, price 7) and (cost 5, price 5).
        // Greedy takes the density-6 item (7/6 > 1) then nothing fits;
        // optimal takes two of the cost-5 items for value 10.
        let set = LinearCapacitySet::new(vec![Some(6.0), Some(5.0)], 10.0);
        let p = PriceVector::from_prices(vec![7.0, 5.0]);
        let g = solve_supply_greedy(&p, &set, None);
        let o = solve_supply_optimal(&p, &set, None, 1_000);
        assert_eq!(g, qv(&[1, 0]));
        assert_eq!(o, qv(&[0, 2]));
        assert!(p.value_of(&o) > p.value_of(&g));
    }

    #[test]
    fn optimal_with_caps_uses_enumeration() {
        let set = LinearCapacitySet::new(vec![Some(6.0), Some(5.0)], 10.0);
        let p = PriceVector::from_prices(vec![7.0, 5.0]);
        let caps = qv(&[5, 1]);
        let o = solve_supply_optimal(&p, &set, Some(&caps), 1_000);
        // Only one cost-5 item allowed, so (1,0) with value 7 wins over
        // (0,1) with value 5.
        assert_eq!(o, qv(&[1, 0]));
    }

    #[test]
    fn enumeration_counts_small_set() {
        // capacity 500, costs 400/100: vectors are (0,0..5) and (1,0..1).
        let set = n1();
        let all = enumerate_capacity_set(&set, None);
        assert_eq!(all.len(), 8);
        assert!(all.contains(&qv(&[1, 1])));
        assert!(!all.contains(&qv(&[1, 2])));
    }

    #[test]
    fn zero_capacity_supplies_nothing() {
        let set = LinearCapacitySet::new(vec![Some(1.0)], 0.0);
        let p = PriceVector::uniform(1, 1.0);
        assert_eq!(solve_supply_greedy(&p, &set, None), qv(&[0]));
        assert_eq!(solve_supply_optimal(&p, &set, None, 10), qv(&[0]));
    }

    #[test]
    fn can_add_override_matches_clone_based_probe() {
        // The LinearCapacitySet override must agree with the default
        // `s + eₖ` probe on a grid of supply points, including the
        // capacity boundary and the incapable class.
        let set = LinearCapacitySet::new(vec![Some(400.0), Some(100.0), None], 500.0);
        for a in 0..3u64 {
            for b in 0..7u64 {
                let s = QuantityVector::from_counts(vec![a, b, 0]);
                for k in 0..3 {
                    let mut grown = s.clone();
                    grown.add_units(k, 1);
                    let default_probe = grown.get(2) == 0 && set.contains(&grown);
                    assert_eq!(
                        set.can_add(&s, k),
                        default_probe,
                        "s={:?} k={k}",
                        s.as_slice()
                    );
                }
            }
        }
    }

    #[test]
    fn density_order_helper_reuses_scratch() {
        let p = PriceVector::from_prices(vec![4.5, 1.0, 2.0]);
        let costs = vec![Some(400.0), Some(100.0), None];
        let mut order = Vec::with_capacity(3);
        price_density_order_into(&p, &costs, &mut order);
        // densities: 4.5/400 = 0.011, 1/100 = 0.01 → class 0 first; class 2
        // has no cost and is excluded.
        assert_eq!(order, vec![0, 1]);
        let cap = order.capacity();
        price_density_order_into(&p, &costs, &mut order);
        assert_eq!(order.capacity(), cap, "no reallocation on reuse");
    }

    #[test]
    fn density_order_ties_break_by_class_index() {
        // Equal densities: 2/200 == 1/100.
        let p = PriceVector::from_prices(vec![2.0, 1.0]);
        let costs = vec![Some(200.0), Some(100.0)];
        let mut order = Vec::new();
        price_density_order_into(&p, &costs, &mut order);
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn cached_solvers_match_uncached_across_price_changes() {
        let set = LinearCapacitySet::new(vec![Some(400.0), Some(100.0), Some(250.0)], 500.0);
        let mut cache = DensityOrderCache::new();
        let price_seq = [
            vec![1.0, 1.0, 1.0],
            vec![1.0, 1.0, 1.0], // unchanged: cache hit
            vec![4.5, 1.0, 1.0], // changed: re-sort
            vec![4.5, 1.0, 9.0],
        ];
        for prices in price_seq {
            let p = PriceVector::from_prices(prices);
            assert_eq!(
                solve_supply_greedy_cached(&p, &set, None, &mut cache),
                solve_supply_greedy(&p, &set, None)
            );
            assert_eq!(
                solve_supply_fractional_cached(&p, &set, None, &mut cache),
                solve_supply_fractional(&p, &set, None)
            );
        }
    }

    #[test]
    fn cache_invalidates_on_cost_change() {
        let mut cache = DensityOrderCache::new();
        let p = PriceVector::uniform(2, 1.0);
        let fast_q1 = LinearCapacitySet::new(vec![Some(50.0), Some(100.0)], 500.0);
        let fast_q2 = LinearCapacitySet::new(vec![Some(400.0), Some(100.0)], 500.0);
        let a = solve_supply_greedy_cached(&p, &fast_q1, None, &mut cache);
        assert_eq!(a, qv(&[10, 0]));
        // Same prices, different costs: the ordering must flip.
        let b = solve_supply_greedy_cached(&p, &fast_q2, None, &mut cache);
        assert_eq!(b, qv(&[0, 5]));
        cache.invalidate();
        assert_eq!(
            solve_supply_greedy_cached(&p, &fast_q2, None, &mut cache),
            b
        );
    }

    #[test]
    fn trade_exhaustion_uses_nonallocating_probe() {
        // The QA-NT deal-admission rule (Definition 4 rule 2) probes
        // `can_add` for every demanded class; with the LinearCapacitySet
        // override this is pure arithmetic. Semantics checked against the
        // paper's N1: with 100 ms left no q1 (400 ms) fits but a q2
        // (100 ms) does.
        let set = n1();
        assert!(crate::trade_exhausts_pair(&qv(&[5, 0]), &qv(&[1, 0]), &set));
        assert!(!crate::trade_exhausts_pair(
            &qv(&[0, 5]),
            &qv(&[1, 0]),
            &set
        ));
    }

    #[test]
    fn enumerated_set_includes_zero() {
        let s = EnumeratedSupplySet::new(2, vec![qv(&[1, 0])]);
        assert!(s.contains(&qv(&[0, 0])));
        assert!(s.contains(&qv(&[1, 0])));
        assert!(!s.contains(&qv(&[0, 1])));
    }
}
