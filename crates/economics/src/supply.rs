//! Supply sets and the seller's profit-maximisation problem (eq. 4).
//!
//! The paper defines a node's *supply set* `Sᵢ` as the set of feasible
//! supply vectors given its hardware resources (§2.2). Each period the
//! selfish seller picks `s⃗ᵢ* = argmax_{s⃗∈Sᵢ} p⃗·s⃗` (eq. 4).
//!
//! We model `Sᵢ` as a time-capacity polytope: executing one class-`k` query
//! costs the node `t_ik` time units, the period is `T` long, so
//! `Sᵢ = { s⃗ ∈ N^K : Σₖ sₖ·t_ik ≤ T }` with `sₖ = 0` forced for classes
//! the node cannot evaluate at all (no local data). That makes eq. 4 an
//! unbounded integer knapsack. Two solvers are provided:
//!
//! * [`solve_supply_greedy`] — the first-order-conditions solver the paper
//!   implies: fill capacity in descending *price density* `pₖ / t_ik`. Its
//!   integer rounding is exactly the error source the paper blames for
//!   Greedy's ~5 % edge at low loads (§5.1).
//! * [`solve_supply_optimal`] — exact dynamic program, used by tests to
//!   bound the greedy gap and by the ablation bench.

use crate::vectors::{PriceVector, QuantityVector};

/// A set of feasible supply vectors.
pub trait SupplySet {
    /// Number of commodity classes.
    fn num_classes(&self) -> usize;

    /// `true` iff `s` is a feasible supply vector.
    fn contains(&self, s: &QuantityVector) -> bool;

    /// `true` iff supply could grow by one unit of class `k` from `s` and
    /// stay feasible. Default: test `s + eₖ`.
    fn can_add(&self, s: &QuantityVector, k: usize) -> bool {
        let mut grown = s.clone();
        grown.add_units(k, 1);
        self.contains(&grown)
    }
}

/// The time-capacity polytope `{ s : Σ sₖ·tₖ ≤ capacity }`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearCapacitySet {
    /// Per-class unit cost `t_ik` (time to run one class-k query on this
    /// node); `None` for classes the node cannot evaluate.
    unit_costs: Vec<Option<f64>>,
    /// Total capacity `T` in the same time units.
    capacity: f64,
}

impl LinearCapacitySet {
    /// Builds a capacity set.
    ///
    /// # Panics
    /// Panics if `capacity` is negative/non-finite or any present cost is
    /// not strictly positive and finite.
    pub fn new(unit_costs: Vec<Option<f64>>, capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity >= 0.0,
            "bad capacity {capacity}"
        );
        assert!(
            unit_costs
                .iter()
                .flatten()
                .all(|t| t.is_finite() && *t > 0.0),
            "unit costs must be positive and finite"
        );
        LinearCapacitySet {
            unit_costs,
            capacity,
        }
    }

    /// The per-class unit costs.
    pub fn unit_costs(&self) -> &[Option<f64>] {
        &self.unit_costs
    }

    /// The capacity `T`.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Time consumed by supply vector `s`.
    pub fn load_of(&self, s: &QuantityVector) -> f64 {
        s.iter()
            .map(|(k, c)| match self.unit_costs[k] {
                Some(t) => t * c as f64,
                None => {
                    if c > 0 {
                        f64::INFINITY
                    } else {
                        0.0
                    }
                }
            })
            .sum()
    }
}

impl SupplySet for LinearCapacitySet {
    fn num_classes(&self) -> usize {
        self.unit_costs.len()
    }

    fn contains(&self, s: &QuantityVector) -> bool {
        assert_eq!(s.num_classes(), self.num_classes());
        // A tiny epsilon absorbs float accumulation; capacities are real
        // times (ms), unit counts small integers.
        self.load_of(s) <= self.capacity * (1.0 + 1e-12) + 1e-9
    }
}

/// An explicitly enumerated supply set — used in unit tests and by the
/// brute-force Pareto enumerator on small economies.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumeratedSupplySet {
    k: usize,
    vectors: Vec<QuantityVector>,
}

impl EnumeratedSupplySet {
    /// Builds from an explicit list of feasible vectors. The zero vector is
    /// added automatically (a node may always supply nothing).
    pub fn new(k: usize, mut vectors: Vec<QuantityVector>) -> Self {
        assert!(vectors.iter().all(|v| v.num_classes() == k));
        let zero = QuantityVector::zeros(k);
        if !vectors.contains(&zero) {
            vectors.push(zero);
        }
        EnumeratedSupplySet { k, vectors }
    }

    /// All feasible vectors.
    pub fn vectors(&self) -> &[QuantityVector] {
        &self.vectors
    }
}

impl SupplySet for EnumeratedSupplySet {
    fn num_classes(&self) -> usize {
        self.k
    }

    fn contains(&self, s: &QuantityVector) -> bool {
        self.vectors.contains(s)
    }
}

/// Enumerates every feasible supply vector of a [`LinearCapacitySet`]
/// (bounded per class by `caps` when given). Exponential — only for the
/// small economies in tests.
pub fn enumerate_capacity_set(
    set: &LinearCapacitySet,
    caps: Option<&QuantityVector>,
) -> Vec<QuantityVector> {
    let k = set.num_classes();
    let mut out = Vec::new();
    let mut cur = QuantityVector::zeros(k);
    fn rec(
        set: &LinearCapacitySet,
        caps: Option<&QuantityVector>,
        cur: &mut QuantityVector,
        class: usize,
        out: &mut Vec<QuantityVector>,
    ) {
        if class == set.num_classes() {
            out.push(cur.clone());
            return;
        }
        let mut n = 0;
        loop {
            cur.set(class, n);
            if !set.contains(cur) || caps.is_some_and(|c| n > c.get(class)) {
                break;
            }
            rec(set, caps, cur, class + 1, out);
            if set.unit_costs()[class].is_none() {
                break; // cannot supply this class at all
            }
            n += 1;
        }
        cur.set(class, 0);
    }
    rec(set, caps, &mut cur, 0, &mut out);
    out
}

/// Greedy first-order-conditions solver for eq. 4.
///
/// Fills the capacity in descending price density `pₖ / tₖ`, taking as many
/// whole units of the densest class as fit, then the next, and so on.
/// Optional `caps` bounds the per-class supply (a node that has seen demand
/// for at most `caps[k]` class-k queries has no reason to reserve more).
pub fn solve_supply_greedy(
    prices: &PriceVector,
    set: &LinearCapacitySet,
    caps: Option<&QuantityVector>,
) -> QuantityVector {
    let k = set.num_classes();
    assert_eq!(prices.num_classes(), k, "class count mismatch");
    // Classes sorted by density, ties broken by class index for determinism.
    let mut order: Vec<usize> = (0..k).filter(|&i| set.unit_costs()[i].is_some()).collect();
    order.sort_by(|&a, &b| {
        let da = prices.get(a) / set.unit_costs()[a].expect("filtered");
        let db = prices.get(b) / set.unit_costs()[b].expect("filtered");
        db.partial_cmp(&da)
            .expect("densities are finite")
            .then(a.cmp(&b))
    });
    let mut supply = QuantityVector::zeros(k);
    let mut remaining = set.capacity();
    for i in order {
        let t = set.unit_costs()[i].expect("filtered");
        let mut fit = (remaining / t).floor() as u64;
        if let Some(c) = caps {
            fit = fit.min(c.get(i));
        }
        if fit > 0 {
            supply.add_units(i, fit);
            remaining -= fit as f64 * t;
        }
    }
    debug_assert!(set.contains(&supply));
    supply
}

/// Fractional (LP-relaxation) solver for eq. 4.
///
/// Fills capacity in descending price density with *real-valued* amounts:
/// the densest class absorbs everything up to its cap, then the next, and
/// the final class may receive a fractional amount. This is the true
/// first-order-conditions optimum of the relaxed problem; QA-NT rounds it
/// to integers per period with an error-diffusion carry, which is exactly
/// the rounding the paper blames for its ~5 % loss at light loads (§5.1).
pub fn solve_supply_fractional(
    prices: &PriceVector,
    set: &LinearCapacitySet,
    caps: Option<&[f64]>,
) -> Vec<f64> {
    let k = set.num_classes();
    assert_eq!(prices.num_classes(), k, "class count mismatch");
    if let Some(c) = caps {
        assert_eq!(c.len(), k);
    }
    let mut order: Vec<usize> = (0..k).filter(|&i| set.unit_costs()[i].is_some()).collect();
    order.sort_by(|&a, &b| {
        let da = prices.get(a) / set.unit_costs()[a].expect("filtered");
        let db = prices.get(b) / set.unit_costs()[b].expect("filtered");
        db.partial_cmp(&da)
            .expect("densities are finite")
            .then(a.cmp(&b))
    });
    let mut supply = vec![0.0; k];
    let mut remaining = set.capacity();
    for i in order {
        if remaining <= 0.0 {
            break;
        }
        let t = set.unit_costs()[i].expect("filtered");
        let mut amount = remaining / t;
        if let Some(c) = caps {
            amount = amount.min(c[i]);
        }
        if amount > 0.0 {
            supply[i] = amount;
            remaining -= amount * t;
        }
    }
    supply
}

/// Exact solver for eq. 4 by dynamic programming over discretized capacity.
///
/// Capacity and unit costs are discretized to `resolution` steps (costs
/// round *up*, so the result is always feasible). With `caps` given it is a
/// bounded knapsack, otherwise unbounded. Exact up to discretization;
/// intended for tests and ablations, not the hot path.
pub fn solve_supply_optimal(
    prices: &PriceVector,
    set: &LinearCapacitySet,
    caps: Option<&QuantityVector>,
    resolution: usize,
) -> QuantityVector {
    let k = set.num_classes();
    assert_eq!(prices.num_classes(), k, "class count mismatch");
    assert!(resolution > 0);
    if set.capacity() <= 0.0 {
        return QuantityVector::zeros(k);
    }
    let step = set.capacity() / resolution as f64;
    let cost_steps: Vec<Option<usize>> = set
        .unit_costs()
        .iter()
        .map(|c| c.map(|t| ((t / step).ceil() as usize).max(1)))
        .collect();

    // value[w] = best value using ≤ w capacity steps; choice[w] = (class,
    // prev_w) used to reconstruct.
    let w_max = resolution;
    let mut value = vec![0.0_f64; w_max + 1];
    let mut choice: Vec<Option<(usize, usize)>> = vec![None; w_max + 1];

    if let Some(caps) = caps {
        // Bounded: iterate classes, then units (binary splitting is overkill
        // at test scale).
        for (i, &step) in cost_steps.iter().enumerate() {
            let Some(ci) = step else { continue };
            let pi = prices.get(i);
            for _ in 0..caps.get(i) {
                // One more unit of class i; iterate weights descending so the
                // unit is used at most once per pass.
                let mut improved = false;
                for w in (ci..=w_max).rev() {
                    let cand = value[w - ci] + pi;
                    if cand > value[w] + 1e-12 {
                        value[w] = cand;
                        choice[w] = Some((i, w - ci));
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
        }
        // Reconstruction for bounded case is tricky with in-place passes, so
        // recompute greedily from the DP values via a fresh exact search at
        // small scale instead: fall back to enumeration when K and caps are
        // small (tests only use it that way).
        let vectors = enumerate_capacity_set(set, Some(caps));
        return vectors
            .into_iter()
            .max_by(|a, b| {
                prices
                    .value_of(a)
                    .partial_cmp(&prices.value_of(b))
                    .expect("finite")
                    .then_with(|| a.total().cmp(&b.total()))
            })
            .expect("enumeration always contains the zero vector");
    }

    // Unbounded knapsack DP with reconstruction.
    for w in 1..=w_max {
        for (i, &step) in cost_steps.iter().enumerate() {
            let Some(ci) = step else { continue };
            if ci <= w {
                let cand = value[w - ci] + prices.get(i);
                if cand > value[w] + 1e-12 {
                    value[w] = cand;
                    choice[w] = Some((i, w - ci));
                }
            }
        }
    }
    // The best value may be reached below w_max.
    let mut best_w = 0;
    for w in 0..=w_max {
        if value[w] > value[best_w] + 1e-12 {
            best_w = w;
        }
    }
    let mut supply = QuantityVector::zeros(k);
    let mut w = best_w;
    while let Some((i, prev)) = choice[w] {
        supply.add_units(i, 1);
        w = prev;
    }
    debug_assert!(set.contains(&supply));
    supply
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qv(v: &[u64]) -> QuantityVector {
        QuantityVector::from_counts(v.to_vec())
    }

    /// Node N1 of the paper's running example: q1 = 400 ms, q2 = 100 ms,
    /// period T = 500 ms.
    fn n1() -> LinearCapacitySet {
        LinearCapacitySet::new(vec![Some(400.0), Some(100.0)], 500.0)
    }

    #[test]
    fn capacity_membership() {
        let s = n1();
        assert!(s.contains(&qv(&[1, 1]))); // 400 + 100 = 500 ≤ 500
        assert!(s.contains(&qv(&[0, 5]))); // 500 ≤ 500
        assert!(!s.contains(&qv(&[1, 2]))); // 600 > 500
        assert!(s.contains(&qv(&[0, 0])));
    }

    #[test]
    fn impossible_class_forces_zero() {
        let s = LinearCapacitySet::new(vec![Some(100.0), None], 1_000.0);
        assert!(s.contains(&qv(&[10, 0])));
        assert!(!s.contains(&qv(&[0, 1])));
        assert!(!s.can_add(&qv(&[0, 0]), 1));
    }

    #[test]
    fn greedy_follows_price_density() {
        // Equal prices (1,1): density q2 = 1/100 > q1 = 1/400, so N1
        // supplies only q2 — exactly the paper's §3.3 walkthrough.
        let p = PriceVector::uniform(2, 1.0);
        let s = solve_supply_greedy(&p, &n1(), None);
        assert_eq!(s, qv(&[0, 5]));
    }

    #[test]
    fn greedy_switches_when_q1_price_rises() {
        // "prices of q1 queries will start increasing until node N1 starts
        // to also supply q1" — at p1/t1 > p2/t2 i.e. p1 > 4, q1 dominates.
        let p = PriceVector::from_prices(vec![4.5, 1.0]);
        let s = solve_supply_greedy(&p, &n1(), None);
        assert_eq!(s.get(0), 1, "one q1 fits in 500ms");
        assert_eq!(s.get(1), 1, "remaining 100ms fits one q2");
    }

    #[test]
    fn greedy_respects_caps() {
        let p = PriceVector::uniform(2, 1.0);
        let caps = qv(&[0, 2]);
        let s = solve_supply_greedy(&p, &n1(), Some(&caps));
        assert_eq!(s, qv(&[0, 2]));
    }

    #[test]
    fn greedy_never_exceeds_capacity() {
        let set = LinearCapacitySet::new(vec![Some(7.0), Some(3.0), Some(11.0)], 100.0);
        let p = PriceVector::from_prices(vec![5.0, 2.0, 9.0]);
        let s = solve_supply_greedy(&p, &set, None);
        assert!(set.contains(&s));
    }

    #[test]
    fn optimal_beats_or_matches_greedy() {
        // Classic knapsack instance where density-greedy is suboptimal:
        // capacity 10, items (cost 6, price 7) and (cost 5, price 5).
        // Greedy takes the density-6 item (7/6 > 1) then nothing fits;
        // optimal takes two of the cost-5 items for value 10.
        let set = LinearCapacitySet::new(vec![Some(6.0), Some(5.0)], 10.0);
        let p = PriceVector::from_prices(vec![7.0, 5.0]);
        let g = solve_supply_greedy(&p, &set, None);
        let o = solve_supply_optimal(&p, &set, None, 1_000);
        assert_eq!(g, qv(&[1, 0]));
        assert_eq!(o, qv(&[0, 2]));
        assert!(p.value_of(&o) > p.value_of(&g));
    }

    #[test]
    fn optimal_with_caps_uses_enumeration() {
        let set = LinearCapacitySet::new(vec![Some(6.0), Some(5.0)], 10.0);
        let p = PriceVector::from_prices(vec![7.0, 5.0]);
        let caps = qv(&[5, 1]);
        let o = solve_supply_optimal(&p, &set, Some(&caps), 1_000);
        // Only one cost-5 item allowed, so (1,0) with value 7 wins over
        // (0,1) with value 5.
        assert_eq!(o, qv(&[1, 0]));
    }

    #[test]
    fn enumeration_counts_small_set() {
        // capacity 500, costs 400/100: vectors are (0,0..5) and (1,0..1).
        let set = n1();
        let all = enumerate_capacity_set(&set, None);
        assert_eq!(all.len(), 8);
        assert!(all.contains(&qv(&[1, 1])));
        assert!(!all.contains(&qv(&[1, 2])));
    }

    #[test]
    fn zero_capacity_supplies_nothing() {
        let set = LinearCapacitySet::new(vec![Some(1.0)], 0.0);
        let p = PriceVector::uniform(1, 1.0);
        assert_eq!(solve_supply_greedy(&p, &set, None), qv(&[0]));
        assert_eq!(solve_supply_optimal(&p, &set, None, 10), qv(&[0]));
    }

    #[test]
    fn enumerated_set_includes_zero() {
        let s = EnumeratedSupplySet::new(2, vec![qv(&[1, 0])]);
        assert!(s.contains(&qv(&[0, 0])));
        assert!(s.contains(&qv(&[1, 0])));
        assert!(!s.contains(&qv(&[0, 1])));
    }
}
