//! Empirical checks of the First Theorem of Welfare Economics (FTWE).
//!
//! FTWE is the paper's foundation: "market economies composed of
//! self-interested consumers and firms achieve allocations of resources and
//! goods that are Pareto optimal" (§3). We cannot prove the theorem in
//! code, but we can *check* it instance by instance: run the market
//! mechanism on a small economy, enumerate every feasible solution, and
//! verify no solution Pareto-dominates the market's. The test suite and the
//! property tests run this over many random economies.

use crate::pareto::{enumerate_solutions, is_pareto_optimal, Solution};
use crate::preference::ThroughputPreference;
use crate::supply::LinearCapacitySet;
use crate::tatonnement::{Tatonnement, TatonnementOutcome};
use crate::vectors::{PriceVector, QuantityVector};

/// Distributes an aggregate supply to per-node consumptions, respecting
/// `c⃗ᵢ ≤ d⃗ᵢ` (greedy, in node order). Some split always exists because
/// aggregate supply ≤ aggregate demand.
pub fn split_supply_to_consumptions(
    aggregate_supply: &QuantityVector,
    demands: &[QuantityVector],
) -> Vec<QuantityVector> {
    let k = aggregate_supply.num_classes();
    let mut remaining = aggregate_supply.clone();
    let mut out = Vec::with_capacity(demands.len());
    for d in demands {
        let mut c = QuantityVector::zeros(k);
        for kk in 0..k {
            let take = remaining.get(kk).min(d.get(kk));
            c.set(kk, take);
            remaining.set(kk, remaining.get(kk) - take);
        }
        out.push(c);
    }
    debug_assert!(remaining.is_zero(), "supply exceeded demand");
    out
}

/// Outcome of one FTWE check.
#[derive(Debug, Clone)]
pub enum FtweCheck {
    /// The market converged and its allocation is Pareto optimal.
    Holds { solution: Solution },
    /// The market failed to reach equilibrium within the budget (FTWE only
    /// speaks about equilibria, so nothing is asserted).
    NoEquilibrium,
    /// The market converged but the allocation is dominated — a bug.
    Violated {
        solution: Solution,
        dominated_by: Box<Solution>,
    },
}

/// Runs tâtonnement on the given economy and checks the resulting
/// allocation for Pareto optimality by brute-force enumeration.
///
/// Only suitable for small economies (enumeration is exponential).
pub fn check_ftwe(
    sellers: &[LinearCapacitySet],
    demands: &[QuantityVector],
    process: &Tatonnement,
) -> FtweCheck {
    assert_eq!(sellers.len(), demands.len());
    let aggregate_demand = QuantityVector::aggregate(demands);
    let run = process.run(
        &aggregate_demand,
        sellers,
        PriceVector::uniform(aggregate_demand.num_classes(), 1.0),
    );
    if !matches!(run.outcome, TatonnementOutcome::Converged { .. }) {
        return FtweCheck::NoEquilibrium;
    }
    let agg_supply = QuantityVector::aggregate(&run.supplies);
    let consumptions = split_supply_to_consumptions(&agg_supply, demands);
    let solution = Solution {
        supplies: run.supplies,
        consumptions,
    };
    let prefs: Vec<ThroughputPreference> = demands.iter().map(|_| ThroughputPreference).collect();
    let all = enumerate_solutions(sellers, demands);
    if is_pareto_optimal(&solution, &all, &prefs) {
        FtweCheck::Holds { solution }
    } else {
        let dominated_by = all
            .into_iter()
            .find(|c| crate::pareto::dominates(c, &solution, &prefs))
            .expect("not optimal implies a dominator exists");
        FtweCheck::Violated {
            solution,
            dominated_by: Box::new(dominated_by),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qv(v: &[u64]) -> QuantityVector {
        QuantityVector::from_counts(v.to_vec())
    }

    #[test]
    fn split_respects_per_node_demand() {
        let agg = qv(&[2, 3]);
        let demands = [qv(&[1, 1]), qv(&[3, 2])];
        let cons = split_supply_to_consumptions(&agg, &demands);
        assert_eq!(cons[0], qv(&[1, 1]));
        assert_eq!(cons[1], qv(&[1, 2]));
        assert_eq!(QuantityVector::aggregate(&cons), agg);
    }

    #[test]
    fn ftwe_holds_on_paper_economy_with_clearable_demand() {
        let sellers = vec![
            LinearCapacitySet::new(vec![Some(400.0), Some(100.0)], 500.0),
            LinearCapacitySet::new(vec![Some(450.0), Some(500.0)], 500.0),
        ];
        let demands = vec![qv(&[0, 5]), qv(&[1, 0])];
        match check_ftwe(&sellers, &demands, &Tatonnement::default()) {
            FtweCheck::Holds { solution } => {
                assert_eq!(solution.aggregate_consumption().total(), 6);
            }
            other => panic!("FTWE should hold, got {other:?}"),
        }
    }

    #[test]
    fn ftwe_check_handles_single_node_economy() {
        let sellers = vec![LinearCapacitySet::new(vec![Some(100.0)], 500.0)];
        let demands = vec![qv(&[3])];
        match check_ftwe(&sellers, &demands, &Tatonnement::default()) {
            FtweCheck::Holds { solution } => {
                assert_eq!(solution.aggregate_consumption(), qv(&[3]));
            }
            other => panic!("expected Holds, got {other:?}"),
        }
    }

    #[test]
    fn ftwe_over_random_small_economies() {
        let mut rng = qa_simnet::DetRng::seed_from_u64(2007);
        let mut holds = 0;
        let mut no_eq = 0;
        for _ in 0..25 {
            let nodes = rng.int_in(1, 3) as usize;
            let classes = 2;
            let sellers: Vec<LinearCapacitySet> = (0..nodes)
                .map(|_| {
                    let costs = (0..classes)
                        .map(|_| {
                            if rng.chance(0.85) {
                                Some(rng.float_in(50.0, 400.0))
                            } else {
                                None
                            }
                        })
                        .collect();
                    LinearCapacitySet::new(costs, 500.0)
                })
                .collect();
            let demands: Vec<QuantityVector> = (0..nodes)
                .map(|_| {
                    QuantityVector::from_counts((0..classes).map(|_| rng.int_in(0, 3)).collect())
                })
                .collect();
            match check_ftwe(&sellers, &demands, &Tatonnement::default()) {
                FtweCheck::Holds { .. } => holds += 1,
                FtweCheck::NoEquilibrium => no_eq += 1,
                FtweCheck::Violated {
                    solution,
                    dominated_by,
                } => {
                    panic!("FTWE violated: market gave {solution:?}, dominated by {dominated_by:?}")
                }
            }
        }
        // Most random instances should actually clear; the check must never
        // report a violation.
        assert!(
            holds > 0,
            "no economy converged (holds={holds}, no_eq={no_eq})"
        );
    }
}
