//! The classical centralized tâtonnement process (§3.3, eq. 6).
//!
//! A single *umpire* announces prices to all agents, collects their supply
//! responses, compares them with the (fixed, per-period) demand, and adjusts
//! `p(t+1) = p(t) + λ·z(p(t))` until the excess demand vanishes. The paper
//! rejects this mechanism for deployment — it needs a central authority and
//! trades only at equilibrium — but it is the reference point against which
//! QA-NT's decentralized process is defined, so we implement it both for
//! the test suite (convergence of the price dynamics) and for the ablation
//! benches (centralized vs decentralized).

use crate::market::ExcessVector;
use crate::supply::{solve_supply_greedy, LinearCapacitySet};
use crate::vectors::{PriceVector, QuantityVector};

/// Result of running the umpire iteration.
#[derive(Debug, Clone, PartialEq)]
pub enum TatonnementOutcome {
    /// `z(p⃗*) = 0` was reached after the given number of iterations.
    Converged { iterations: usize },
    /// The iteration budget ran out; the best (lowest ‖z‖₁) state seen is
    /// reported.
    IterationBudgetExhausted { best_l1: u64 },
}

/// The centralized umpire.
#[derive(Debug, Clone)]
pub struct Tatonnement {
    /// Adjustment speed λ of eq. 6. "Higher values reduce the number of
    /// iterations but decrease the accuracy of the estimated vector p⃗*."
    pub lambda: f64,
    /// Prices never fall below this floor (multiplicative dynamics cannot
    /// recover from zero).
    pub price_floor: f64,
    /// Iteration budget.
    pub max_iterations: usize,
}

impl Default for Tatonnement {
    fn default() -> Self {
        Tatonnement {
            lambda: 0.05,
            price_floor: 1e-6,
            max_iterations: 10_000,
        }
    }
}

/// One full tâtonnement run: the state it ended in.
#[derive(Debug, Clone)]
pub struct TatonnementRun {
    /// How the run ended.
    pub outcome: TatonnementOutcome,
    /// Final prices.
    pub prices: PriceVector,
    /// Per-seller supply vectors at the final prices.
    pub supplies: Vec<QuantityVector>,
    /// ‖z‖₁ after each iteration — the convergence trace used by tests and
    /// the ablation bench.
    pub l1_trace: Vec<u64>,
}

impl Tatonnement {
    /// Runs the umpire against a fixed aggregate demand and the given
    /// seller capacity sets, starting from `initial_prices`.
    ///
    /// Each seller responds to announced prices with its greedy
    /// profit-maximising supply (eq. 4), capped by the aggregate demand (no
    /// seller has a reason to produce more of a class than anyone asked
    /// for; without the cap, integer supplies oscillate around equilibrium
    /// forever).
    pub fn run(
        &self,
        demand: &QuantityVector,
        sellers: &[LinearCapacitySet],
        initial_prices: PriceVector,
    ) -> TatonnementRun {
        assert!(!sellers.is_empty(), "empty economy");
        let k = demand.num_classes();
        assert_eq!(initial_prices.num_classes(), k);
        let mut prices = initial_prices;
        let mut l1_trace = Vec::new();
        let mut best_l1 = u64::MAX;
        let mut remaining_cap;

        for iter in 0..self.max_iterations {
            // Collect supply responses; each seller sees the demand still
            // unserved by sellers earlier in the round (sequential rationing
            // keeps aggregate supply ≤ demand, mirroring that a query is
            // evaluated once).
            remaining_cap = demand.clone();
            let mut supplies = Vec::with_capacity(sellers.len());
            for set in sellers {
                let s = solve_supply_greedy(&prices, set, Some(&remaining_cap));
                remaining_cap = remaining_cap.saturating_sub(&s);
                supplies.push(s);
            }
            let agg = QuantityVector::aggregate(&supplies);
            let z = ExcessVector::from_values(
                demand
                    .iter()
                    .zip(agg.iter())
                    .map(|((_, d), (_, s))| d as i64 - s as i64)
                    .collect(),
            );
            let l1 = z.l1_norm();
            l1_trace.push(l1);
            best_l1 = best_l1.min(l1);
            if z.is_zero() {
                return TatonnementRun {
                    outcome: TatonnementOutcome::Converged {
                        iterations: iter + 1,
                    },
                    prices,
                    supplies,
                    l1_trace,
                };
            }
            // eq. 6: p(t+1) = p(t) + λ z(p(t)); multiplicative-in-price form
            // keeps the dynamics scale-free across classes.
            for (kk, zk) in z.iter() {
                let p = prices.get(kk);
                prices.set(kk, p + self.lambda * p * zk as f64, self.price_floor);
            }
        }

        // Budget exhausted: recompute final supplies at last prices.
        remaining_cap = demand.clone();
        let supplies: Vec<QuantityVector> = sellers
            .iter()
            .map(|set| {
                let s = solve_supply_greedy(&prices, set, Some(&remaining_cap));
                remaining_cap = remaining_cap.saturating_sub(&s);
                s
            })
            .collect();
        TatonnementRun {
            outcome: TatonnementOutcome::IterationBudgetExhausted { best_l1 },
            prices,
            supplies,
            l1_trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qv(v: &[u64]) -> QuantityVector {
        QuantityVector::from_counts(v.to_vec())
    }

    /// The paper's two-node economy.
    fn sellers() -> Vec<LinearCapacitySet> {
        vec![
            LinearCapacitySet::new(vec![Some(400.0), Some(100.0)], 500.0),
            LinearCapacitySet::new(vec![Some(450.0), Some(500.0)], 500.0),
        ]
    }

    #[test]
    fn converges_on_satisfiable_demand() {
        // Demand (1,5) is exactly what QA achieves in one period: N2 does
        // the q1, N1 does five q2.
        let t = Tatonnement::default();
        let run = t.run(&qv(&[1, 5]), &sellers(), PriceVector::uniform(2, 1.0));
        assert!(
            matches!(run.outcome, TatonnementOutcome::Converged { .. }),
            "outcome {:?}, trace {:?}",
            run.outcome,
            &run.l1_trace[..run.l1_trace.len().min(20)]
        );
        let agg = QuantityVector::aggregate(&run.supplies);
        assert_eq!(agg, qv(&[1, 5]));
    }

    #[test]
    fn price_of_scarce_class_rises() {
        // Demand (2,2) is infeasible (at most one q2-capable slot remains
        // once both q1 run), so q1 stays in excess demand and its price must
        // be bid up even though equilibrium is unreachable.
        let t = Tatonnement {
            max_iterations: 300,
            ..Tatonnement::default()
        };
        let p0 = PriceVector::from_prices(vec![0.001, 1.0]);
        let run = t.run(&qv(&[2, 2]), &sellers(), p0.clone());
        assert!(
            run.prices.get(0) > p0.get(0),
            "q1 price should have been bid up: {}",
            run.prices
        );
    }

    /// An economy that needs genuine price movement to clear: N1 can run
    /// either class (one query per period), N2 only class A. With B
    /// underpriced, N1 grabs A and B goes unserved until B's price
    /// overtakes A's.
    fn misprice_economy() -> (Vec<LinearCapacitySet>, QuantityVector, PriceVector) {
        let n1 = LinearCapacitySet::new(vec![Some(100.0), Some(100.0)], 100.0);
        let n2 = LinearCapacitySet::new(vec![Some(100.0), None], 100.0);
        (
            vec![n1, n2],
            qv(&[1, 1]),
            PriceVector::from_prices(vec![1.0, 0.5]),
        )
    }

    #[test]
    fn converges_only_after_price_correction() {
        let (sellers, demand, p0) = misprice_economy();
        let t = Tatonnement::default();
        let run = t.run(&demand, &sellers, p0.clone());
        match run.outcome {
            TatonnementOutcome::Converged { iterations } => {
                assert!(
                    iterations > 5,
                    "should take several corrections, took {iterations}"
                );
            }
            other => panic!("expected convergence, got {other:?}"),
        }
        assert!(run.prices.get(1) > p0.get(1), "B price must have risen");
        // Final assignment: N1 does B, N2 does A.
        assert_eq!(run.supplies[0], qv(&[0, 1]));
        assert_eq!(run.supplies[1], qv(&[1, 0]));
    }

    #[test]
    fn infeasible_demand_exhausts_budget_but_improves() {
        // Demand far beyond total capacity can never clear.
        let t = Tatonnement {
            max_iterations: 200,
            ..Tatonnement::default()
        };
        let run = t.run(&qv(&[50, 50]), &sellers(), PriceVector::uniform(2, 1.0));
        match run.outcome {
            TatonnementOutcome::IterationBudgetExhausted { best_l1 } => {
                // System capacity is ~2 queries of q1-scale per period;
                // z can never get near zero.
                assert!(best_l1 > 0);
            }
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn l1_trace_eventually_hits_zero_when_converged() {
        let t = Tatonnement::default();
        let run = t.run(&qv(&[1, 5]), &sellers(), PriceVector::uniform(2, 1.0));
        assert_eq!(*run.l1_trace.last().unwrap(), 0);
    }

    #[test]
    fn zero_demand_is_immediately_in_equilibrium() {
        let t = Tatonnement::default();
        let run = t.run(&qv(&[0, 0]), &sellers(), PriceVector::uniform(2, 1.0));
        assert_eq!(run.outcome, TatonnementOutcome::Converged { iterations: 1 });
        assert!(QuantityVector::aggregate(&run.supplies).is_zero());
    }

    #[test]
    fn higher_lambda_converges_in_fewer_iterations() {
        // The paper: "Higher values reduce the number of iterations".
        let slow = Tatonnement {
            lambda: 0.01,
            ..Tatonnement::default()
        };
        let fast = Tatonnement {
            lambda: 0.2,
            ..Tatonnement::default()
        };
        let (s, d, p0) = misprice_economy();
        let its = |r: &TatonnementRun| match r.outcome {
            TatonnementOutcome::Converged { iterations } => iterations,
            _ => usize::MAX,
        };
        let r_slow = slow.run(&d, &s, p0.clone());
        let r_fast = fast.run(&d, &s, p0);
        assert!(
            its(&r_fast) < its(&r_slow),
            "fast {:?} slow {:?}",
            r_fast.outcome,
            r_slow.outcome
        );
    }
}
