//! Decentralized non-tâtonnement price adjustment (§3.3, QA-NT steps 9 and
//! 12–14) and the Definition-4 trading rule.
//!
//! In the non-tâtonnement process there is no umpire and trade happens at
//! disequilibrium prices. Each node keeps a *private* price vector, never
//! disclosed on the network, and adjusts it from trading failures alone:
//!
//! * a request for class `k` arrives but the node's remaining supply is
//!   exhausted (`s_ik = 0`) → the node infers excess demand and raises
//!   `pₖ ← pₖ + λ·pₖ` (step 9);
//! * at period end, `s_ik > 0` units remain unsold → the node infers excess
//!   supply and lowers `pₖ ← pₖ − s_ik·λ·pₖ` (steps 12–14).
//!
//! [`NonTatonnementPricer`] is that private state machine. It is the heart
//! of QA-NT and is reused verbatim by the simulator (`qa-sim`) and by the
//! threaded cluster (`qa-cluster`).

use crate::vectors::{PriceVector, QuantityVector};
use qa_simnet::telemetry::{PriceReason, Telemetry, TelemetryEvent};

/// Tuning knobs of the price dynamics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PricerConfig {
    /// Adjustment speed λ.
    pub lambda: f64,
    /// Initial price of every class.
    pub initial_price: f64,
    /// Prices never fall below this (multiplicative dynamics cannot leave
    /// zero).
    pub price_floor: f64,
    /// Prices never rise above this (guards against runaway growth during
    /// long overloads).
    pub price_ceiling: f64,
}

impl Default for PricerConfig {
    fn default() -> Self {
        PricerConfig {
            lambda: 0.1,
            initial_price: 1.0,
            price_floor: 1e-9,
            price_ceiling: 1e12,
        }
    }
}

impl PricerConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on non-finite or non-positive values, λ outside `(0, 1)`, or
    /// an inverted floor/ceiling pair.
    pub fn validate(&self) {
        assert!(
            self.lambda.is_finite() && self.lambda > 0.0 && self.lambda < 1.0,
            "lambda must be in (0,1), got {}",
            self.lambda
        );
        assert!(
            self.price_floor.is_finite() && self.price_floor > 0.0,
            "bad floor"
        );
        assert!(
            self.price_ceiling.is_finite() && self.price_ceiling > self.price_floor,
            "bad ceiling"
        );
        assert!(
            self.initial_price >= self.price_floor && self.initial_price <= self.price_ceiling,
            "initial price outside [floor, ceiling]"
        );
    }
}

/// A node's private price state and its non-tâtonnement dynamics.
#[derive(Debug, Clone)]
pub struct NonTatonnementPricer {
    config: PricerConfig,
    prices: PriceVector,
    /// Rejections recorded this period, per class (diagnostics).
    rejections: Vec<u64>,
    /// Event sink for `PriceAdjusted` telemetry; disabled (a single
    /// branch per adjustment) unless [`NonTatonnementPricer::set_telemetry`]
    /// installs a labeled handle.
    telemetry: Telemetry,
}

impl NonTatonnementPricer {
    /// A pricer with explicit (already jittered) initial prices. Because
    /// the non-tâtonnement dynamics are multiplicative, initial log-price
    /// offsets between nodes persist forever — heterogeneous starting
    /// prices are what desynchronizes otherwise-identical sellers into a
    /// stable mix of specializations.
    pub fn with_prices(prices: PriceVector, config: PricerConfig) -> Self {
        config.validate();
        let k = prices.num_classes();
        NonTatonnementPricer {
            prices,
            rejections: vec![0; k],
            config,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Installs a telemetry handle (label it with the owning node id via
    /// [`Telemetry::with_label`] first); price adjustments emit
    /// [`TelemetryEvent::PriceAdjusted`] through it.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Rescales all prices so their geometric mean is 1.
    ///
    /// A competitive market is invariant to a uniform price rescaling (only
    /// relative prices drive supply decisions), so this changes nothing
    /// economically — but it keeps long overloads from driving every price
    /// into the ceiling/floor clamps, which *would* destroy the relative
    /// structure.
    pub fn renormalize(&mut self) {
        let k = self.num_classes();
        if k == 0 {
            return;
        }
        let log_mean: f64 = self.prices.iter().map(|(_, p)| p.ln()).sum::<f64>() / k as f64;
        let scale = log_mean.exp();
        if !scale.is_finite() || scale <= 0.0 {
            return;
        }
        for kk in 0..k {
            let old = self.prices.get(kk);
            let p = old / scale;
            self.prices.set(
                kk,
                p.clamp(self.config.price_floor, self.config.price_ceiling),
                self.config.price_floor,
            );
            let new = self.prices.get(kk);
            if new != old {
                let telemetry = &self.telemetry;
                telemetry.emit(|| TelemetryEvent::PriceAdjusted {
                    node: telemetry.label(),
                    class: kk as u32,
                    old,
                    new,
                    reason: PriceReason::Renormalize,
                });
            }
        }
    }
}

impl NonTatonnementPricer {
    /// A pricer over `k` classes starting at the configured initial price.
    pub fn new(k: usize, config: PricerConfig) -> Self {
        config.validate();
        NonTatonnementPricer {
            prices: PriceVector::uniform(k, config.initial_price),
            rejections: vec![0; k],
            config,
            telemetry: Telemetry::disabled(),
        }
    }

    /// The current private prices.
    pub fn prices(&self) -> &PriceVector {
        &self.prices
    }

    /// Batched price read: writes `ln(price_k)` for every class into
    /// `out` (sized to the class count) in one call. The log domain is
    /// what aggregated price signals are exchanged in — the geometric
    /// mean over a region's pricers is an arithmetic mean of these — so
    /// the sharded engine's per-period reports read each market exactly
    /// once instead of taking `K` getter round-trips.
    ///
    /// # Panics
    /// Panics when `out` is not sized to the class count.
    pub fn ln_prices_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.num_classes(), "class count mismatch");
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.prices.get(k).max(f64::MIN_POSITIVE).ln();
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.prices.num_classes()
    }

    /// The configuration.
    pub fn config(&self) -> &PricerConfig {
        &self.config
    }

    /// Step 9 of QA-NT: a class-`k` request had to be rejected because the
    /// node's supply for `k` is exhausted — price rises by a factor `1+λ`.
    pub fn on_rejection(&mut self, k: usize) {
        let p = self.prices.get(k);
        let raised = (p * (1.0 + self.config.lambda)).min(self.config.price_ceiling);
        self.prices.set(k, raised, self.config.price_floor);
        self.rejections[k] += 1;
        let new = self.prices.get(k);
        let telemetry = &self.telemetry;
        telemetry.emit(|| TelemetryEvent::PriceAdjusted {
            node: telemetry.label(),
            class: k as u32,
            old: p,
            new,
            reason: PriceReason::Rejection,
        });
    }

    /// Applies `count` consecutive [`NonTatonnementPricer::on_rejection`]s
    /// for class `k`. Bit-identical to calling `on_rejection` in a loop —
    /// the same stepwise `min(p·(1+λ), ceiling)` multiplications in the
    /// same order — but while telemetry is disabled the intermediate
    /// prices are unobservable, so the sequence runs in a register with a
    /// single store at the end (and stops early at a fixed point: the
    /// ceiling, where the remaining steps are no-ops). Enabled runs take
    /// the slow path and still emit one `PriceAdjusted` per rejection.
    ///
    /// Callers batch rejection storms: a client resubmission wave that
    /// was refused `count` times charges the price rise in one call
    /// instead of `count` market round-trips.
    pub fn on_rejections(&mut self, k: usize, count: u64) {
        if count == 0 {
            return;
        }
        if self.telemetry.is_enabled() {
            for _ in 0..count {
                self.on_rejection(k);
            }
            return;
        }
        // `raised` stays finite (min with a finite ceiling) and ≥ the
        // floor (prices never sit below it), so the one deferred
        // `set` is exactly the last of the per-step clamped sets.
        let factor = 1.0 + self.config.lambda;
        let ceiling = self.config.price_ceiling;
        let mut p = self.prices.get(k);
        for _ in 0..count {
            let raised = (p * factor).min(ceiling);
            if raised == p {
                break;
            }
            p = raised;
        }
        self.prices.set(k, p, self.config.price_floor);
        self.rejections[k] += count;
    }

    /// Replays per-pricer rejection counts for class `k` across many
    /// pricers at once. Result-identical to calling
    /// [`Self::on_rejections`] on each pricer — every pricer's price walks
    /// its own `min(p·(1+λ), ceiling)` chain — but the chains are
    /// *independent across pricers*, so running eight of them interleaved
    /// hides the multiply latency that makes a lone chain serial.
    ///
    /// Lanes that exhaust their count early multiply by exactly `1.0`
    /// (a bit-exact identity for finite values) until the widest lane in
    /// the chunk finishes; a lane saturated at the ceiling keeps taking
    /// `min(ceiling·(1+λ), ceiling) = ceiling`. Callers must only use
    /// this while telemetry is disabled on every pricer (the eager path
    /// emits one `PriceAdjusted` per rejection).
    pub fn on_rejections_batch(
        pricers: &mut [&mut NonTatonnementPricer],
        k: usize,
        counts: &[u64],
    ) {
        assert_eq!(pricers.len(), counts.len());
        const LANES: usize = 8;
        let mut i = 0;
        while i < pricers.len() {
            let n = LANES.min(pricers.len() - i);
            if n == 1 {
                pricers[i].on_rejections(k, counts[i]);
                break;
            }
            let chunk = &mut pricers[i..i + n];
            // Idle lanes (j ≥ n, or exhausted ones once s ≥ d[j]) multiply
            // by exactly 1.0 — a bit-exact identity for finite values — so
            // the inner loop can run all LANES unconditionally with a
            // constant bound, which lets it unroll and vectorize.
            let mut p = [0.0f64; LANES];
            let mut fac = [1.0f64; LANES];
            let mut ceil = [f64::INFINITY; LANES];
            let mut d = [0u64; LANES];
            for (j, pr) in chunk.iter().enumerate() {
                p[j] = pr.prices.get(k);
                fac[j] = 1.0 + pr.config.lambda;
                ceil[j] = pr.config.price_ceiling;
                d[j] = counts[i + j];
            }
            let dmax = d.iter().copied().max().unwrap_or(0);
            for s in 0..dmax {
                for j in 0..LANES {
                    let f = if s < d[j] { fac[j] } else { 1.0 };
                    p[j] = (p[j] * f).min(ceil[j]);
                }
            }
            for (j, pr) in chunk.iter_mut().enumerate() {
                pr.prices.set(k, p[j], pr.config.price_floor);
                pr.rejections[k] += d[j];
            }
            i += n;
        }
    }

    /// Steps 12–14 of QA-NT: the period ended with `leftover` unsold supply;
    /// each class' price falls by `s_ik·λ·pₖ`, clamped so it stays positive.
    ///
    /// Also resets the per-period rejection counters.
    pub fn on_period_end(&mut self, leftover: &QuantityVector) {
        assert_eq!(leftover.num_classes(), self.num_classes());
        for (k, s) in leftover.iter() {
            if s > 0 {
                let p = self.prices.get(k);
                // p − s·λ·p can go negative for large leftovers; the price
                // floor (and a multiplicative clamp at 1−λ·s capped below 1)
                // keeps the dynamics sane.
                let factor = (1.0 - self.config.lambda * s as f64).max(0.0);
                self.prices.set(
                    k,
                    (p * factor).max(self.config.price_floor),
                    self.config.price_floor,
                );
                let new = self.prices.get(k);
                let telemetry = &self.telemetry;
                telemetry.emit(|| TelemetryEvent::PriceAdjusted {
                    node: telemetry.label(),
                    class: k as u32,
                    old: p,
                    new,
                    reason: PriceReason::PeriodDecay,
                });
            }
        }
        self.rejections.iter_mut().for_each(|r| *r = 0);
    }

    /// Rejections observed for class `k` in the current period.
    pub fn rejections(&self, k: usize) -> u64 {
        self.rejections[k]
    }

    /// `true` when the node should consider the system overloaded: §5.1
    /// suggests tracking prices and engaging QA-NT's supply restriction
    /// "only ... if they are above a specific threshold".
    pub fn any_price_above(&self, threshold: f64) -> bool {
        self.prices.iter().any(|(_, p)| p > threshold)
    }
}

/// Checks rule 1 of Definition 4 (feasibility): after the proposed
/// incremental trade `delta`, the seller's new supply vector must still lie
/// in its supply set.
pub fn trade_is_feasible<S: crate::supply::SupplySet>(
    seller_supply: &QuantityVector,
    delta: &QuantityVector,
    seller_set: &S,
) -> bool {
    let new_supply = seller_supply.clone() + delta;
    seller_set.contains(&new_supply)
}

/// Checks rule 2 of Definition 4 (exhaustion): the buyer's post-trade
/// consumption must be weakly preferred to any alternative single-step
/// extension the seller could still feasibly offer. Under the throughput
/// preference this reduces to: there is no class the seller could still
/// supply that the buyer still demands — i.e. the trade exhausted all
/// possibilities of further trade between the pair.
pub fn trade_exhausts_pair<S: crate::supply::SupplySet>(
    buyer_unmet_demand: &QuantityVector,
    seller_supply_after: &QuantityVector,
    seller_set: &S,
) -> bool {
    (0..buyer_unmet_demand.num_classes())
        .all(|k| buyer_unmet_demand.get(k) == 0 || !seller_set.can_add(seller_supply_after, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supply::LinearCapacitySet;

    fn qv(v: &[u64]) -> QuantityVector {
        QuantityVector::from_counts(v.to_vec())
    }

    #[test]
    fn rejection_raises_price_multiplicatively() {
        let mut p = NonTatonnementPricer::new(2, PricerConfig::default());
        let before = p.prices().get(0);
        p.on_rejection(0);
        assert!((p.prices().get(0) - before * 1.1).abs() < 1e-12);
        assert_eq!(p.prices().get(1), 1.0, "other classes untouched");
        assert_eq!(p.rejections(0), 1);
    }

    #[test]
    fn leftover_supply_lowers_price() {
        let mut p = NonTatonnementPricer::new(2, PricerConfig::default());
        p.on_period_end(&qv(&[3, 0]));
        // p ← p(1 − 3λ) = 1 × 0.7
        assert!((p.prices().get(0) - 0.7).abs() < 1e-12);
        assert_eq!(p.prices().get(1), 1.0);
    }

    #[test]
    fn huge_leftover_clamps_at_floor_not_negative() {
        let mut p = NonTatonnementPricer::new(1, PricerConfig::default());
        p.on_period_end(&qv(&[1_000]));
        let price = p.prices().get(0);
        assert!(price >= p.config().price_floor);
        assert!(price <= 1e-5, "price should have collapsed to the floor");
    }

    #[test]
    fn ceiling_stops_runaway_growth() {
        let cfg = PricerConfig {
            price_ceiling: 10.0,
            ..PricerConfig::default()
        };
        let mut p = NonTatonnementPricer::new(1, cfg);
        for _ in 0..1_000 {
            p.on_rejection(0);
        }
        assert!(p.prices().get(0) <= 10.0 + 1e-9);
    }

    #[test]
    fn period_end_resets_rejection_counters() {
        let mut p = NonTatonnementPricer::new(1, PricerConfig::default());
        p.on_rejection(0);
        p.on_rejection(0);
        assert_eq!(p.rejections(0), 2);
        p.on_period_end(&qv(&[0]));
        assert_eq!(p.rejections(0), 0);
    }

    #[test]
    fn balanced_period_leaves_prices_unchanged() {
        let mut p = NonTatonnementPricer::new(3, PricerConfig::default());
        let before = p.prices().clone();
        p.on_period_end(&qv(&[0, 0, 0]));
        assert_eq!(p.prices(), &before);
    }

    #[test]
    fn overload_detection_threshold() {
        let mut p = NonTatonnementPricer::new(2, PricerConfig::default());
        assert!(!p.any_price_above(2.0));
        for _ in 0..10 {
            p.on_rejection(1);
        }
        assert!(p.any_price_above(2.0));
    }

    #[test]
    fn sustained_rejections_beat_decay() {
        // A class rejected every period while another is left over must end
        // up relatively more expensive — that is the signal that shifts
        // supply in QA-NT.
        let mut p = NonTatonnementPricer::new(2, PricerConfig::default());
        for _ in 0..20 {
            p.on_rejection(0);
            p.on_period_end(&qv(&[0, 1]));
        }
        assert!(p.prices().get(0) > 5.0 * p.prices().get(1));
    }

    #[test]
    fn definition4_feasibility() {
        let set = LinearCapacitySet::new(vec![Some(400.0), Some(100.0)], 500.0);
        let current = qv(&[0, 3]);
        assert!(trade_is_feasible(&current, &qv(&[0, 2]), &set)); // 500 total
        assert!(!trade_is_feasible(&current, &qv(&[1, 0]), &set)); // 700 > 500
    }

    #[test]
    fn definition4_exhaustion() {
        let set = LinearCapacitySet::new(vec![Some(400.0), Some(100.0)], 500.0);
        // Seller already supplies (0,5): full. No further trade possible.
        assert!(trade_exhausts_pair(&qv(&[1, 2]), &qv(&[0, 5]), &set));
        // Seller at (0,3) could still add q2, and the buyer still wants q2:
        // the trade did NOT exhaust the pair.
        assert!(!trade_exhausts_pair(&qv(&[0, 2]), &qv(&[0, 3]), &set));
        // Buyer wants nothing: trivially exhausted.
        assert!(trade_exhausts_pair(&qv(&[0, 0]), &qv(&[0, 0]), &set));
    }

    #[test]
    fn adjustments_emit_labeled_telemetry() {
        let (tel, buf) = Telemetry::buffered();
        let mut p = NonTatonnementPricer::new(2, PricerConfig::default());
        p.set_telemetry(tel.with_label(7));
        p.on_rejection(0);
        p.on_period_end(&qv(&[0, 2]));
        let records = buf.records();
        assert_eq!(records.len(), 2);
        match &records[0].event {
            TelemetryEvent::PriceAdjusted {
                node,
                class,
                old,
                new,
                reason,
            } => {
                assert_eq!((*node, *class), (7, 0));
                assert_eq!(*reason, PriceReason::Rejection);
                assert!((new / old - 1.1).abs() < 1e-12);
            }
            other => panic!("unexpected event {other:?}"),
        }
        match &records[1].event {
            TelemetryEvent::PriceAdjusted { class, reason, .. } => {
                assert_eq!(*class, 1);
                assert_eq!(*reason, PriceReason::PeriodDecay);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn config_validation_rejects_bad_lambda() {
        let cfg = PricerConfig {
            lambda: 1.5,
            ..PricerConfig::default()
        };
        let _ = NonTatonnementPricer::new(1, cfg);
    }
}
