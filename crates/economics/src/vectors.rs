//! Quantity and price vectors.
//!
//! Section 2.2 of the paper models each node `i` in a time period by three
//! vectors over the `K` query classes: demand `d⃗ᵢ`, consumption `c⃗ᵢ` and
//! supply `s⃗ᵢ`, all in `N^K`, plus a system-wide virtual price vector
//! `p⃗ ∈ R₊^K`. [`QuantityVector`] and [`PriceVector`] are those objects,
//! with the algebra the paper uses: aggregation (eq. 1), the component-wise
//! partial order of eq. 3, and value products `p⃗·c⃗`.

use std::fmt;
use std::ops::{Add, AddAssign, Index};

/// A vector in `N^K`: one non-negative count per commodity (query class).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QuantityVector(Vec<u64>);

impl QuantityVector {
    /// The zero vector over `k` classes.
    pub fn zeros(k: usize) -> Self {
        QuantityVector(vec![0; k])
    }

    /// Builds from raw counts.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        QuantityVector(counts)
    }

    /// Number of commodity classes `K`.
    pub fn num_classes(&self) -> usize {
        self.0.len()
    }

    /// Count for class `k`.
    pub fn get(&self, k: usize) -> u64 {
        self.0[k]
    }

    /// Sets the count for class `k`.
    pub fn set(&mut self, k: usize, v: u64) {
        self.0[k] = v;
    }

    /// Resets every count to zero in place (buffer reuse: equivalent to
    /// replacing the vector with [`Self::zeros`] of the same size, without
    /// the allocation).
    pub fn reset_zero(&mut self) {
        self.0.fill(0);
    }

    /// Adds `n` units of class `k`.
    pub fn add_units(&mut self, k: usize, n: u64) {
        self.0[k] += n;
    }

    /// Removes one unit of class `k`, returning `false` (and leaving the
    /// vector unchanged) if none remain.
    pub fn take_unit(&mut self, k: usize) -> bool {
        if self.0[k] > 0 {
            self.0[k] -= 1;
            true
        } else {
            false
        }
    }

    /// Total units across all classes — the quantity the paper's
    /// throughput preference compares.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// `true` iff every component is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&c| c == 0)
    }

    /// Component-wise `≤` — the partial order of eq. 3 (`c⃗ ≤ d⃗`).
    pub fn le(&self, other: &QuantityVector) -> bool {
        assert_eq!(self.num_classes(), other.num_classes());
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    /// Component-wise saturating subtraction.
    pub fn saturating_sub(&self, other: &QuantityVector) -> QuantityVector {
        assert_eq!(self.num_classes(), other.num_classes());
        QuantityVector(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        )
    }

    /// Component-wise minimum.
    pub fn min(&self, other: &QuantityVector) -> QuantityVector {
        assert_eq!(self.num_classes(), other.num_classes());
        QuantityVector(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| *a.min(b))
                .collect(),
        )
    }

    /// Aggregates per-node vectors into the system-wide vector of eq. 1.
    ///
    /// # Panics
    /// Panics on an empty iterator or mismatched lengths.
    pub fn aggregate<'a, I: IntoIterator<Item = &'a QuantityVector>>(vectors: I) -> QuantityVector {
        let mut it = vectors.into_iter();
        let first = it.next().expect("aggregate of zero vectors");
        let mut acc = first.clone();
        for v in it {
            acc += v;
        }
        acc
    }

    /// Iterates `(class, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.0.iter().copied().enumerate()
    }

    /// The raw counts.
    pub fn as_slice(&self) -> &[u64] {
        &self.0
    }
}

impl Index<usize> for QuantityVector {
    type Output = u64;
    fn index(&self, k: usize) -> &u64 {
        &self.0[k]
    }
}

impl Add<&QuantityVector> for QuantityVector {
    type Output = QuantityVector;
    fn add(mut self, rhs: &QuantityVector) -> QuantityVector {
        self += rhs;
        self
    }
}

impl AddAssign<&QuantityVector> for QuantityVector {
    fn add_assign(&mut self, rhs: &QuantityVector) {
        assert_eq!(
            self.num_classes(),
            rhs.num_classes(),
            "class count mismatch"
        );
        for (a, b) in self.0.iter_mut().zip(&rhs.0) {
            *a += b;
        }
    }
}

impl fmt::Display for QuantityVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// A virtual price vector `p⃗ ∈ R₊^K`.
///
/// Prices are strictly positive: the non-tâtonnement adjustment is
/// multiplicative (`p ± λp`), so a zero price could never recover. The
/// constructor and all mutators enforce a configurable positive floor.
#[derive(Debug, Clone, PartialEq)]
pub struct PriceVector(Vec<f64>);

impl PriceVector {
    /// A uniform price vector (`price` for every class).
    ///
    /// # Panics
    /// Panics unless `price` is strictly positive and finite.
    pub fn uniform(k: usize, price: f64) -> Self {
        assert!(price.is_finite() && price > 0.0, "bad price {price}");
        PriceVector(vec![price; k])
    }

    /// Builds from raw prices. Zero prices are allowed here — a caller
    /// constructing a vector directly (rather than running the adjustment
    /// loop, whose mutators clamp to a positive floor) may legitimately
    /// start a class at zero, e.g. to model a free class.
    ///
    /// # Panics
    /// Panics if any price is negative or not finite.
    pub fn from_prices(prices: Vec<f64>) -> Self {
        assert!(
            prices.iter().all(|p| p.is_finite() && *p >= 0.0),
            "prices must be non-negative and finite"
        );
        PriceVector(prices)
    }

    /// Number of classes `K`.
    pub fn num_classes(&self) -> usize {
        self.0.len()
    }

    /// Price of class `k`.
    pub fn get(&self, k: usize) -> f64 {
        self.0[k]
    }

    /// Sets the price of class `k`, clamping to `floor`.
    pub fn set(&mut self, k: usize, price: f64, floor: f64) {
        debug_assert!(floor > 0.0);
        self.0[k] = if price.is_finite() {
            price.max(floor)
        } else {
            floor
        };
    }

    /// The value `p⃗·q⃗ = Σₖ pₖ qₖ` of a quantity vector at these prices.
    pub fn value_of(&self, q: &QuantityVector) -> f64 {
        assert_eq!(self.num_classes(), q.num_classes(), "class count mismatch");
        self.0
            .iter()
            .zip(q.as_slice())
            .map(|(p, &c)| p * c as f64)
            .sum()
    }

    /// Iterates `(class, price)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.0.iter().copied().enumerate()
    }

    /// The raw prices.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Largest price across classes.
    pub fn max_price(&self) -> f64 {
        self.0.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Rescales all prices so the largest is 1 — useful for display; the
    /// market is invariant to a uniform rescaling.
    pub fn normalized(&self) -> PriceVector {
        let m = self.max_price();
        PriceVector(self.0.iter().map(|p| p / m).collect())
    }
}

impl fmt::Display for PriceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p:.4}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qv(v: &[u64]) -> QuantityVector {
        QuantityVector::from_counts(v.to_vec())
    }

    #[test]
    fn aggregate_matches_paper_example() {
        // §2.2: N1 demand (1,6), N2 demand (1,0) → aggregate (2,6).
        let d1 = qv(&[1, 6]);
        let d2 = qv(&[1, 0]);
        assert_eq!(QuantityVector::aggregate([&d1, &d2]), qv(&[2, 6]));
    }

    #[test]
    fn partial_order_le() {
        assert!(qv(&[1, 1]).le(&qv(&[1, 6])));
        assert!(!qv(&[2, 0]).le(&qv(&[1, 6])));
        // Incomparable pair: neither ≤ holds.
        assert!(!qv(&[2, 0]).le(&qv(&[0, 2])));
        assert!(!qv(&[0, 2]).le(&qv(&[2, 0])));
    }

    #[test]
    fn take_unit_decrements_until_empty() {
        let mut s = qv(&[2, 0]);
        assert!(s.take_unit(0));
        assert!(s.take_unit(0));
        assert!(!s.take_unit(0), "exhausted class must reject");
        assert!(!s.take_unit(1));
        assert_eq!(s, qv(&[0, 0]));
        assert!(s.is_zero());
    }

    #[test]
    fn totals_and_saturating_sub() {
        let d = qv(&[2, 6]);
        let c = qv(&[1, 1]);
        assert_eq!(d.total(), 8);
        assert_eq!(d.saturating_sub(&c), qv(&[1, 5]));
        // Saturation when subtracting more than present.
        assert_eq!(c.saturating_sub(&d), qv(&[0, 0]));
    }

    #[test]
    fn value_product() {
        let p = PriceVector::from_prices(vec![2.0, 0.5]);
        let s = qv(&[3, 4]);
        assert!((p.value_of(&s) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn value_of_zero_vector_is_zero() {
        let p = PriceVector::uniform(5, 1.0);
        assert_eq!(p.value_of(&QuantityVector::zeros(5)), 0.0);
    }

    #[test]
    #[should_panic(expected = "class count mismatch")]
    fn mismatched_lengths_panic() {
        let p = PriceVector::uniform(2, 1.0);
        let _ = p.value_of(&qv(&[1, 2, 3]));
    }

    #[test]
    fn accepts_zero_prices() {
        let p = PriceVector::from_prices(vec![1.0, 0.0]);
        assert_eq!(p.get(1), 0.0);
        assert_eq!(p.value_of(&qv(&[5, 9])), 5.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_prices() {
        let _ = PriceVector::from_prices(vec![1.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_non_finite_prices() {
        let _ = PriceVector::from_prices(vec![1.0, f64::NAN]);
    }

    #[test]
    fn price_floor_enforced_by_set() {
        let mut p = PriceVector::uniform(1, 1.0);
        p.set(0, -5.0, 0.01);
        assert_eq!(p.get(0), 0.01);
        p.set(0, f64::NAN, 0.01);
        assert_eq!(p.get(0), 0.01);
    }

    #[test]
    fn normalization_scales_max_to_one() {
        let p = PriceVector::from_prices(vec![2.0, 8.0, 4.0]);
        let n = p.normalized();
        assert_eq!(n.as_slice(), &[0.25, 1.0, 0.5]);
    }

    #[test]
    fn component_min() {
        assert_eq!(qv(&[3, 1]).min(&qv(&[2, 5])), qv(&[2, 1]));
    }

    #[test]
    fn display_formats() {
        assert_eq!(qv(&[1, 6]).to_string(), "(1, 6)");
    }
}
