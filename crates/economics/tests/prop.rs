//! Property tests for the economics substrate, driven by seeded [`DetRng`]
//! loops (the hermetic-build substitute for proptest): each property runs
//! over 200 random cases from a fixed seed, so failures reproduce exactly.

use qa_economics::{
    dominates, solve_supply_fractional, solve_supply_greedy, solve_supply_optimal,
    LinearCapacitySet, NonTatonnementPricer, PriceVector, PricerConfig, QuantityVector, Solution,
    SupplySet, ThroughputPreference,
};
use qa_simnet::DetRng;

const CASES: usize = 200;

/// A small capacity set with 2–4 classes: per-class costs are either
/// unsupported (`None`) or drawn from 10..500, total capacity from 50..1000.
fn capacity_set(rng: &mut DetRng) -> LinearCapacitySet {
    let k = rng.int_in(2, 4) as usize;
    let costs: Vec<Option<f64>> = (0..k)
        .map(|_| {
            if rng.chance(0.5) {
                None
            } else {
                Some(rng.float_in(10.0, 500.0))
            }
        })
        .collect();
    let cap = rng.float_in(50.0, 1_000.0);
    LinearCapacitySet::new(costs, cap)
}

/// Greedy supply is always feasible.
#[test]
fn greedy_supply_feasible() {
    let mut rng = DetRng::seed_from_u64(0xEC01_0001);
    for case in 0..CASES {
        let set = capacity_set(&mut rng);
        let seed = rng.int_in(0, 999);
        let k = set.num_classes();
        let prices = PriceVector::from_prices(
            (0..k)
                .map(|i| 0.1 + ((seed + i as u64) % 17) as f64)
                .collect(),
        );
        let s = solve_supply_greedy(&prices, &set, None);
        assert!(set.contains(&s), "case {case}");
    }
}

/// The DP solver matches or beats the greedy one up to its capacity
/// discretization (costs round *up* in the DP, which can shave at most
/// a few units near full capacity), and its solution is feasible.
#[test]
fn optimal_dominates_greedy() {
    let mut rng = DetRng::seed_from_u64(0xEC01_0002);
    for case in 0..CASES {
        let set = capacity_set(&mut rng);
        let seed = rng.int_in(0, 999);
        let k = set.num_classes();
        let prices = PriceVector::from_prices(
            (0..k)
                .map(|i| 0.1 + ((seed * 7 + i as u64) % 13) as f64)
                .collect(),
        );
        let g = solve_supply_greedy(&prices, &set, None);
        let o = solve_supply_optimal(&prices, &set, None, 20_000);
        assert!(set.contains(&o), "case {case}");
        // Tolerance: one whole unit at the highest price covers the
        // worst-case discretization loss at this resolution.
        let slack = prices.max_price();
        assert!(
            prices.value_of(&o) >= prices.value_of(&g) - slack,
            "case {case}: optimal {} << greedy {}",
            prices.value_of(&o),
            prices.value_of(&g)
        );
    }
}

/// The fractional relaxation upper-bounds both integer solvers.
#[test]
fn fractional_upper_bounds_integer() {
    let mut rng = DetRng::seed_from_u64(0xEC01_0003);
    for case in 0..CASES {
        let set = capacity_set(&mut rng);
        let k = set.num_classes();
        let prices = PriceVector::uniform(k, 1.0);
        let frac = solve_supply_fractional(&prices, &set, None);
        let frac_value: f64 = frac
            .iter()
            .enumerate()
            .map(|(i, x)| prices.get(i) * x)
            .sum();
        let o = solve_supply_optimal(&prices, &set, None, 2_000);
        assert!(frac_value >= prices.value_of(&o) - 1e-6, "case {case}");
    }
}

/// Pareto dominance is irreflexive and asymmetric.
#[test]
fn dominance_strict_partial_order() {
    let mut rng = DetRng::seed_from_u64(0xEC01_0004);
    for case in 0..CASES {
        let draw = |rng: &mut DetRng| -> Vec<u64> { (0..4).map(|_| rng.int_in(0, 4)).collect() };
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        let mk = |v: &[u64]| Solution {
            supplies: vec![
                QuantityVector::from_counts(v[..2].to_vec()),
                QuantityVector::from_counts(v[2..].to_vec()),
            ],
            consumptions: vec![
                QuantityVector::from_counts(v[..2].to_vec()),
                QuantityVector::from_counts(v[2..].to_vec()),
            ],
        };
        let (sa, sb) = (mk(&a), mk(&b));
        let prefs = vec![ThroughputPreference, ThroughputPreference];
        assert!(!dominates(&sa, &sa, &prefs), "case {case}: irreflexive");
        if dominates(&sa, &sb, &prefs) {
            assert!(!dominates(&sb, &sa, &prefs), "case {case}: asymmetric");
        }
    }
}

/// Prices always stay within [floor, ceiling] whatever the event sequence,
/// and rejections/leftovers move them in the right direction.
#[test]
fn pricer_bounds_hold() {
    let mut rng = DetRng::seed_from_u64(0xEC01_0005);
    for case in 0..CASES {
        let n = rng.index(200);
        let cfg = PricerConfig::default();
        let mut p = NonTatonnementPricer::new(3, cfg);
        for _ in 0..n {
            let k = rng.index(3);
            let leftover = rng.int_in(0, 9);
            let before = p.prices().get(k);
            if leftover == 0 {
                p.on_rejection(k);
                assert!(p.prices().get(k) >= before, "case {case}");
            } else {
                let mut l = QuantityVector::zeros(3);
                l.set(k, leftover);
                p.on_period_end(&l);
                assert!(p.prices().get(k) <= before, "case {case}");
            }
            for kk in 0..3 {
                let v = p.prices().get(kk);
                assert!(
                    v >= cfg.price_floor && v <= cfg.price_ceiling,
                    "case {case}"
                );
            }
        }
    }
}

/// Renormalization preserves relative prices (up to clamping).
#[test]
fn renormalize_preserves_ratios() {
    let mut rng = DetRng::seed_from_u64(0xEC01_0006);
    for case in 0..CASES {
        let k = rng.int_in(2, 4) as usize;
        let raw: Vec<f64> = (0..k).map(|_| rng.float_in(0.01, 100.0)).collect();
        let mut p = NonTatonnementPricer::with_prices(
            PriceVector::from_prices(raw.clone()),
            PricerConfig::default(),
        );
        let ratio_before = p.prices().get(0) / p.prices().get(1);
        p.renormalize();
        let ratio_after = p.prices().get(0) / p.prices().get(1);
        assert!(
            (ratio_before / ratio_after - 1.0).abs() < 1e-9,
            "case {case}"
        );
        // Geometric mean is ~1 afterwards.
        let k = p.num_classes();
        let log_mean: f64 = p.prices().iter().map(|(_, v)| v.ln()).sum::<f64>() / k as f64;
        assert!(log_mean.abs() < 1e-9, "case {case}");
    }
}

/// Aggregation (eq. 1) is order-independent.
#[test]
fn aggregation_is_commutative() {
    let mut rng = DetRng::seed_from_u64(0xEC01_0007);
    for case in 0..CASES {
        let m = 1 + rng.index(5);
        let vecs: Vec<QuantityVector> = (0..m)
            .map(|_| QuantityVector::from_counts((0..3).map(|_| rng.int_in(0, 19)).collect()))
            .collect();
        let forward = QuantityVector::aggregate(&vecs);
        let mut rev = vecs.clone();
        rev.reverse();
        let backward = QuantityVector::aggregate(&rev);
        assert_eq!(forward, backward, "case {case}");
    }
}
