//! Property tests for the economics substrate.

use proptest::prelude::*;
use qa_economics::{
    dominates, solve_supply_fractional, solve_supply_greedy, solve_supply_optimal,
    LinearCapacitySet, NonTatonnementPricer, PriceVector, PricerConfig, QuantityVector, Solution,
    SupplySet, ThroughputPreference,
};

/// Strategy: a small capacity set with 2–4 classes.
fn capacity_set() -> impl Strategy<Value = LinearCapacitySet> {
    (2usize..=4)
        .prop_flat_map(|k| {
            (
                proptest::collection::vec(
                    prop_oneof![
                        Just(None),
                        (10.0f64..500.0).prop_map(Some),
                    ],
                    k,
                ),
                50.0f64..1_000.0,
            )
        })
        .prop_map(|(costs, cap)| LinearCapacitySet::new(costs, cap))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Greedy supply is always feasible.
    #[test]
    fn greedy_supply_feasible(set in capacity_set(), seed in 0u64..1_000) {
        let k = set.num_classes();
        let prices = PriceVector::from_prices(
            (0..k).map(|i| 0.1 + ((seed + i as u64) % 17) as f64).collect(),
        );
        let s = solve_supply_greedy(&prices, &set, None);
        prop_assert!(set.contains(&s));
    }

    /// The DP solver matches or beats the greedy one up to its capacity
    /// discretization (costs round *up* in the DP, which can shave at most
    /// a few units near full capacity), and its solution is feasible.
    #[test]
    fn optimal_dominates_greedy((set, seed) in (capacity_set(), 0u64..1_000)) {
        let k = set.num_classes();
        let prices = PriceVector::from_prices(
            (0..k).map(|i| 0.1 + ((seed * 7 + i as u64) % 13) as f64).collect(),
        );
        let g = solve_supply_greedy(&prices, &set, None);
        let o = solve_supply_optimal(&prices, &set, None, 20_000);
        prop_assert!(set.contains(&o));
        // Tolerance: one whole unit at the highest price covers the
        // worst-case discretization loss at this resolution.
        let slack = prices.max_price();
        prop_assert!(
            prices.value_of(&o) >= prices.value_of(&g) - slack,
            "optimal {} << greedy {}",
            prices.value_of(&o),
            prices.value_of(&g)
        );
    }

    /// The fractional relaxation upper-bounds both integer solvers.
    #[test]
    fn fractional_upper_bounds_integer(set in capacity_set()) {
        let k = set.num_classes();
        let prices = PriceVector::uniform(k, 1.0);
        let frac = solve_supply_fractional(&prices, &set, None);
        let frac_value: f64 = frac.iter().enumerate().map(|(i, x)| prices.get(i) * x).sum();
        let o = solve_supply_optimal(&prices, &set, None, 2_000);
        prop_assert!(frac_value >= prices.value_of(&o) - 1e-6);
    }

    /// Pareto dominance is irreflexive and asymmetric.
    #[test]
    fn dominance_strict_partial_order(
        a in proptest::collection::vec(0u64..5, 4),
        b in proptest::collection::vec(0u64..5, 4),
    ) {
        let mk = |v: &[u64]| Solution {
            supplies: vec![
                QuantityVector::from_counts(v[..2].to_vec()),
                QuantityVector::from_counts(v[2..].to_vec()),
            ],
            consumptions: vec![
                QuantityVector::from_counts(v[..2].to_vec()),
                QuantityVector::from_counts(v[2..].to_vec()),
            ],
        };
        let (sa, sb) = (mk(&a), mk(&b));
        let prefs = vec![ThroughputPreference, ThroughputPreference];
        prop_assert!(!dominates(&sa, &sa, &prefs), "irreflexive");
        if dominates(&sa, &sb, &prefs) {
            prop_assert!(!dominates(&sb, &sa, &prefs), "asymmetric");
        }
    }

    /// Prices always stay within [floor, ceiling] whatever the event
    /// sequence, and rejections/leftovers move them in the right
    /// direction.
    #[test]
    fn pricer_bounds_hold(events in proptest::collection::vec((0usize..3, 0u64..10), 0..200)) {
        let cfg = PricerConfig::default();
        let mut p = NonTatonnementPricer::new(3, cfg);
        for (k, leftover) in events {
            let before = p.prices().get(k);
            if leftover == 0 {
                p.on_rejection(k);
                prop_assert!(p.prices().get(k) >= before);
            } else {
                let mut l = QuantityVector::zeros(3);
                l.set(k, leftover);
                p.on_period_end(&l);
                prop_assert!(p.prices().get(k) <= before);
            }
            for kk in 0..3 {
                let v = p.prices().get(kk);
                prop_assert!(v >= cfg.price_floor && v <= cfg.price_ceiling);
            }
        }
    }

    /// Renormalization preserves relative prices (up to clamping).
    #[test]
    fn renormalize_preserves_ratios(
        raw in proptest::collection::vec(0.01f64..100.0, 2..=4),
    ) {
        let mut p = NonTatonnementPricer::with_prices(
            PriceVector::from_prices(raw.clone()),
            PricerConfig::default(),
        );
        let ratio_before = p.prices().get(0) / p.prices().get(1);
        p.renormalize();
        let ratio_after = p.prices().get(0) / p.prices().get(1);
        prop_assert!((ratio_before / ratio_after - 1.0).abs() < 1e-9);
        // Geometric mean is ~1 afterwards.
        let k = p.num_classes();
        let log_mean: f64 = p.prices().iter().map(|(_, v)| v.ln()).sum::<f64>() / k as f64;
        prop_assert!(log_mean.abs() < 1e-9);
    }

    /// Aggregation (eq. 1) is order-independent.
    #[test]
    fn aggregation_is_commutative(
        vs in proptest::collection::vec(proptest::collection::vec(0u64..20, 3), 1..6),
    ) {
        let vecs: Vec<QuantityVector> =
            vs.iter().cloned().map(QuantityVector::from_counts).collect();
        let forward = QuantityVector::aggregate(&vecs);
        let mut rev = vecs.clone();
        rev.reverse();
        let backward = QuantityVector::aggregate(&rev);
        prop_assert_eq!(forward, backward);
    }
}
