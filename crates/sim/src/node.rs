//! The simulated node: hardware factors, execution-time model, FIFO queue.
//!
//! Each node is an autonomous RDBMS abstracted as a single work-conserving
//! server (the paper's example likewise assumes "no node can evaluate two
//! queries simultaneously"). Heterogeneity enters through three hardware
//! factors drawn from the Table-3 ranges: CPU speed, I/O speed and
//! sort/hash buffer size, plus the hash-join capability bit.

use crate::config::SimConfig;
use qa_simnet::{DetRng, SimDuration, SimTime};
use qa_workload::QueryTemplate;

/// Static hardware description of a node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeHardware {
    /// CPU speed in GHz.
    pub cpu_ghz: f64,
    /// Sequential I/O speed in MB/s.
    pub io_mbps: f64,
    /// Sort/hash working memory in MB.
    pub buffer_mb: f64,
    /// Whether the node's engine supports hash joins (Table 3: 95/100).
    pub hash_join: bool,
}

impl NodeHardware {
    /// Draws hardware from the configured ranges.
    pub fn sample(cfg: &SimConfig, rng: &mut DetRng) -> NodeHardware {
        NodeHardware {
            cpu_ghz: rng.float_in(cfg.cpu_ghz.0, cfg.cpu_ghz.1),
            io_mbps: rng.float_in(cfg.io_mbps.0, cfg.io_mbps.1),
            buffer_mb: rng.float_in(cfg.buffer_mb.0, cfg.buffer_mb.1),
            hash_join: rng.chance(cfg.hash_join_fraction),
        }
    }

    /// Execution time of a template on this node.
    ///
    /// The template's `base_cost` is calibrated to the reference hardware;
    /// this node scales it by:
    /// * CPU: 60 % of the work scales inversely with clock speed,
    /// * I/O: 40 % scales inversely with disk bandwidth,
    /// * buffers: join-heavy queries pay a spill penalty when the buffer is
    ///   below the 6 MB reference (up to +50 % for a 49-join query on a
    ///   2 MB node),
    /// * joins on merge-scan-only nodes cost 30 % extra (no hash join).
    pub fn execution_time(&self, template: &QueryTemplate, cfg: &SimConfig) -> SimDuration {
        let base = template.base_cost.as_secs_f64();
        let cpu_part = 0.6 * cfg.reference_ghz / self.cpu_ghz;
        let io_part = 0.4 * cfg.reference_io_mbps / self.io_mbps;
        let mut t = base * (cpu_part + io_part);
        let join_weight = f64::from(template.joins) / 50.0;
        let reference_buffer = 6.0;
        if self.buffer_mb < reference_buffer {
            let shortage = reference_buffer / self.buffer_mb - 1.0;
            t *= 1.0 + (0.25 * join_weight * shortage).min(0.5);
        }
        if !self.hash_join && template.joins > 0 {
            t *= 1.3;
        }
        SimDuration::from_secs_f64(t)
    }
}

/// Dynamic node state for the whole federation, struct-of-arrays.
///
/// The allocation hot path scans *one field of every node* (is it alive?
/// what is its backlog?), not every field of one node, so the state is
/// laid out as parallel per-field vectors: the capable/reachable/offer
/// sweeps walk contiguous memory instead of pointer-hopping per node.
/// Static hardware stays in [`crate::scenario::Scenario`]; this is purely
/// the mutable simulation state.
#[derive(Debug, Clone)]
pub struct NodeSoa {
    /// Time until which already-accepted work occupies each node.
    backlog_until: Vec<SimTime>,
    /// Queries currently queued or running, per node.
    queued: Vec<u32>,
    /// Total busy time accumulated per node (utilization metrics).
    busy: Vec<SimDuration>,
    /// Liveness (failure injection).
    alive: Vec<bool>,
    /// Number of `true` entries in `alive`. Lets the allocation path skip
    /// the per-query liveness filter entirely in the (overwhelmingly
    /// common) no-failures case.
    alive_count: usize,
}

impl NodeSoa {
    /// `n` fresh idle nodes.
    pub fn new(n: usize) -> NodeSoa {
        NodeSoa {
            backlog_until: vec![SimTime::ZERO; n],
            queued: vec![0; n],
            busy: vec![SimDuration::ZERO; n],
            alive: vec![true; n],
            alive_count: n,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// `true` iff the federation is empty.
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }

    /// Whether node `i` is alive.
    pub fn alive(&self, i: usize) -> bool {
        self.alive[i]
    }

    /// The liveness column (contiguous capable-set filtering).
    pub fn alive_slice(&self) -> &[bool] {
        &self.alive
    }

    /// `true` iff every node is alive (no failure injected, or all
    /// recovered).
    pub fn all_alive(&self) -> bool {
        self.alive_count == self.alive.len()
    }

    /// Queries currently queued or running on node `i`.
    pub fn queued(&self, i: usize) -> u32 {
        self.queued[i]
    }

    /// The backlog column (contiguous offer sweeps: zipping this row with
    /// an execution-time row gives every node's estimated completion with
    /// no per-node bounds checks).
    pub fn backlog_until_slice(&self) -> &[SimTime] {
        &self.backlog_until
    }

    /// Outstanding work on node `i` as seen at `now`.
    pub fn backlog(&self, i: usize, now: SimTime) -> SimDuration {
        self.backlog_until[i].saturating_since(now)
    }

    /// Estimated completion (queueing + execution) of a query with the
    /// given execution time, if node `i` accepted it at `now`.
    pub fn estimated_completion(&self, i: usize, now: SimTime, exec: SimDuration) -> SimDuration {
        self.backlog(i, now) + exec
    }

    /// Node `i` accepts a query at `now`; returns its completion time.
    pub fn accept(&mut self, i: usize, now: SimTime, exec: SimDuration) -> SimTime {
        debug_assert!(self.alive[i]);
        let start = if self.backlog_until[i] > now {
            self.backlog_until[i]
        } else {
            now
        };
        let finish = start + exec;
        self.backlog_until[i] = finish;
        self.queued[i] += 1;
        self.busy[i] += exec;
        finish
    }

    /// A query finished on node `i`.
    pub fn complete(&mut self, i: usize) {
        debug_assert!(self.queued[i] > 0);
        self.queued[i] -= 1;
    }

    /// Marks node `i` dead (failure injection): it stops offering and its
    /// queue is considered lost.
    pub fn kill(&mut self, i: usize) {
        if self.alive[i] {
            self.alive_count -= 1;
        }
        self.alive[i] = false;
        self.queued[i] = 0;
    }

    /// Brings dead node `i` back at `now` (crash *recovery*). The node
    /// rejoins with an empty queue — whatever it held when it died was
    /// lost with the crash and is the driver's to resubmit — while `busy`
    /// keeps accumulating across incarnations for utilization accounting.
    pub fn revive(&mut self, i: usize, now: SimTime) {
        if !self.alive[i] {
            self.alive_count += 1;
        }
        self.alive[i] = true;
        self.backlog_until[i] = now;
        self.queued[i] = 0;
    }

    /// Total busy time summed over nodes.
    pub fn total_busy(&self) -> SimDuration {
        self.busy.iter().fold(SimDuration::ZERO, |acc, &b| acc + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_simnet::SimDuration;
    use qa_workload::{ClassId, RelationId};

    fn cfg() -> SimConfig {
        SimConfig::paper_defaults()
    }

    fn template(joins: u32, ms: u64) -> QueryTemplate {
        QueryTemplate {
            id: ClassId(0),
            joins,
            relations: (0..=joins).map(RelationId).collect(),
            base_cost: SimDuration::from_millis(ms),
            result_bytes: 1_000,
        }
    }

    fn hw(cpu: f64, io: f64, buf: f64, hash: bool) -> NodeHardware {
        NodeHardware {
            cpu_ghz: cpu,
            io_mbps: io,
            buffer_mb: buf,
            hash_join: hash,
        }
    }

    #[test]
    fn reference_hardware_runs_at_base_cost() {
        let h = hw(2.3, 42.5, 6.0, true);
        let t = h.execution_time(&template(10, 1_000), &cfg());
        assert!((t.as_millis_f64() - 1_000.0).abs() < 1.0, "{t}");
    }

    #[test]
    fn faster_cpu_runs_faster() {
        let slow = hw(1.0, 42.5, 6.0, true);
        let fast = hw(3.5, 42.5, 6.0, true);
        let t = template(10, 1_000);
        assert!(fast.execution_time(&t, &cfg()) < slow.execution_time(&t, &cfg()));
    }

    #[test]
    fn io_speed_matters() {
        let slow = hw(2.3, 5.0, 6.0, true);
        let fast = hw(2.3, 80.0, 6.0, true);
        let t = template(0, 1_000);
        assert!(fast.execution_time(&t, &cfg()) < slow.execution_time(&t, &cfg()));
    }

    #[test]
    fn small_buffer_penalizes_join_heavy_queries_only() {
        let tight = hw(2.3, 42.5, 2.0, true);
        let roomy = hw(2.3, 42.5, 10.0, true);
        let scan = template(0, 1_000);
        let joins = template(49, 1_000);
        // 0-join query: no spill penalty.
        assert!(
            (tight.execution_time(&scan, &cfg()).as_millis_f64()
                - roomy.execution_time(&scan, &cfg()).as_millis_f64())
            .abs()
                < 1.0
        );
        assert!(tight.execution_time(&joins, &cfg()) > roomy.execution_time(&joins, &cfg()));
    }

    #[test]
    fn merge_only_nodes_pay_join_penalty() {
        let merge = hw(2.3, 42.5, 6.0, false);
        let hash = hw(2.3, 42.5, 6.0, true);
        let joins = template(5, 1_000);
        let scan = template(0, 1_000);
        let ratio = merge.execution_time(&joins, &cfg()).as_millis_f64()
            / hash.execution_time(&joins, &cfg()).as_millis_f64();
        assert!((ratio - 1.3).abs() < 0.01);
        assert_eq!(
            merge.execution_time(&scan, &cfg()),
            hash.execution_time(&scan, &cfg())
        );
    }

    #[test]
    fn sampled_hardware_in_ranges() {
        let c = cfg();
        let mut rng = DetRng::seed_from_u64(5);
        let mut hash_count = 0;
        for _ in 0..500 {
            let h = NodeHardware::sample(&c, &mut rng);
            assert!((1.0..3.5).contains(&h.cpu_ghz));
            assert!((5.0..80.0).contains(&h.io_mbps));
            assert!((2.0..10.0).contains(&h.buffer_mb));
            hash_count += u32::from(h.hash_join);
        }
        // ~95% hash join.
        assert!((450..=500).contains(&hash_count), "{hash_count}");
    }

    #[test]
    fn fifo_queue_accumulates_backlog() {
        let mut n = NodeSoa::new(1);
        let now = SimTime::from_millis(100);
        let f1 = n.accept(0, now, SimDuration::from_millis(400));
        assert_eq!(f1, SimTime::from_millis(500));
        let f2 = n.accept(0, now, SimDuration::from_millis(100));
        assert_eq!(f2, SimTime::from_millis(600), "second query queues behind");
        assert_eq!(n.queued(0), 2);
        assert_eq!(n.backlog(0, now), SimDuration::from_millis(500));
        n.complete(0);
        assert_eq!(n.queued(0), 1);
    }

    #[test]
    fn idle_node_starts_immediately() {
        let mut n = NodeSoa::new(1);
        let f = n.accept(0, SimTime::from_millis(1_000), SimDuration::from_millis(50));
        assert_eq!(f, SimTime::from_millis(1_050));
        // Long after finishing, backlog is zero.
        assert_eq!(n.backlog(0, SimTime::from_millis(2_000)), SimDuration::ZERO);
    }

    #[test]
    fn kill_then_revive_resets_queue_but_keeps_busy_time() {
        let mut n = NodeSoa::new(2);
        let now = SimTime::from_millis(100);
        n.accept(0, now, SimDuration::from_millis(400));
        let busy_before = n.total_busy();
        n.kill(0);
        assert!(!n.alive(0));
        assert!(n.alive(1), "other nodes unaffected");
        assert_eq!(n.queued(0), 0, "crash loses the queue");
        let later = SimTime::from_millis(250);
        n.revive(0, later);
        assert!(n.alive(0));
        assert_eq!(n.backlog(0, later), SimDuration::ZERO, "rejoins idle");
        assert_eq!(
            n.total_busy(),
            busy_before,
            "utilization survives incarnations"
        );
    }

    #[test]
    fn estimated_completion_matches_accept() {
        let mut n = NodeSoa::new(1);
        let now = SimTime::from_millis(0);
        n.accept(0, now, SimDuration::from_millis(300));
        let est = n.estimated_completion(0, now, SimDuration::from_millis(200));
        let actual = n.accept(0, now, SimDuration::from_millis(200));
        assert_eq!(now + est, actual);
    }
}
