//! The simulated node: hardware factors, execution-time model, FIFO queue.
//!
//! Each node is an autonomous RDBMS abstracted as a single work-conserving
//! server (the paper's example likewise assumes "no node can evaluate two
//! queries simultaneously"). Heterogeneity enters through three hardware
//! factors drawn from the Table-3 ranges: CPU speed, I/O speed and
//! sort/hash buffer size, plus the hash-join capability bit.

use crate::config::SimConfig;
use qa_simnet::{DetRng, SimDuration, SimTime};
use qa_workload::QueryTemplate;

/// Static hardware description of a node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeHardware {
    /// CPU speed in GHz.
    pub cpu_ghz: f64,
    /// Sequential I/O speed in MB/s.
    pub io_mbps: f64,
    /// Sort/hash working memory in MB.
    pub buffer_mb: f64,
    /// Whether the node's engine supports hash joins (Table 3: 95/100).
    pub hash_join: bool,
}

impl NodeHardware {
    /// Draws hardware from the configured ranges.
    pub fn sample(cfg: &SimConfig, rng: &mut DetRng) -> NodeHardware {
        NodeHardware {
            cpu_ghz: rng.float_in(cfg.cpu_ghz.0, cfg.cpu_ghz.1),
            io_mbps: rng.float_in(cfg.io_mbps.0, cfg.io_mbps.1),
            buffer_mb: rng.float_in(cfg.buffer_mb.0, cfg.buffer_mb.1),
            hash_join: rng.chance(cfg.hash_join_fraction),
        }
    }

    /// Execution time of a template on this node.
    ///
    /// The template's `base_cost` is calibrated to the reference hardware;
    /// this node scales it by:
    /// * CPU: 60 % of the work scales inversely with clock speed,
    /// * I/O: 40 % scales inversely with disk bandwidth,
    /// * buffers: join-heavy queries pay a spill penalty when the buffer is
    ///   below the 6 MB reference (up to +50 % for a 49-join query on a
    ///   2 MB node),
    /// * joins on merge-scan-only nodes cost 30 % extra (no hash join).
    pub fn execution_time(&self, template: &QueryTemplate, cfg: &SimConfig) -> SimDuration {
        let base = template.base_cost.as_secs_f64();
        let cpu_part = 0.6 * cfg.reference_ghz / self.cpu_ghz;
        let io_part = 0.4 * cfg.reference_io_mbps / self.io_mbps;
        let mut t = base * (cpu_part + io_part);
        let join_weight = f64::from(template.joins) / 50.0;
        let reference_buffer = 6.0;
        if self.buffer_mb < reference_buffer {
            let shortage = reference_buffer / self.buffer_mb - 1.0;
            t *= 1.0 + (0.25 * join_weight * shortage).min(0.5);
        }
        if !self.hash_join && template.joins > 0 {
            t *= 1.3;
        }
        SimDuration::from_secs_f64(t)
    }
}

/// Dynamic node state: the FIFO backlog.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// The hardware.
    pub hardware: NodeHardware,
    /// Time until which already-accepted work occupies the node.
    backlog_until: SimTime,
    /// Queries currently queued or running.
    pub queued: u32,
    /// Total busy time accumulated (for utilization metrics).
    pub busy: SimDuration,
    /// Whether the node is alive (failure injection).
    pub alive: bool,
}

impl NodeState {
    /// A fresh idle node.
    pub fn new(hardware: NodeHardware) -> NodeState {
        NodeState {
            hardware,
            backlog_until: SimTime::ZERO,
            queued: 0,
            busy: SimDuration::ZERO,
            alive: true,
        }
    }

    /// Outstanding work as seen at `now`.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.backlog_until.saturating_since(now)
    }

    /// Estimated completion (queueing + execution) of a query with the
    /// given execution time, if accepted at `now`.
    pub fn estimated_completion(&self, now: SimTime, exec: SimDuration) -> SimDuration {
        self.backlog(now) + exec
    }

    /// Accepts a query at `now`; returns its completion time.
    pub fn accept(&mut self, now: SimTime, exec: SimDuration) -> SimTime {
        debug_assert!(self.alive);
        let start = if self.backlog_until > now {
            self.backlog_until
        } else {
            now
        };
        let finish = start + exec;
        self.backlog_until = finish;
        self.queued += 1;
        self.busy += exec;
        finish
    }

    /// A query finished.
    pub fn complete(&mut self) {
        debug_assert!(self.queued > 0);
        self.queued -= 1;
    }

    /// Marks the node dead (failure injection): it stops offering and its
    /// queue is considered lost.
    pub fn kill(&mut self) {
        self.alive = false;
        self.queued = 0;
    }

    /// Brings a dead node back at `now` (crash *recovery*). The node
    /// rejoins with an empty queue — whatever it held when it died was
    /// lost with the crash and is the driver's to resubmit — while `busy`
    /// keeps accumulating across incarnations for utilization accounting.
    pub fn revive(&mut self, now: SimTime) {
        self.alive = true;
        self.backlog_until = now;
        self.queued = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_simnet::SimDuration;
    use qa_workload::{ClassId, RelationId};

    fn cfg() -> SimConfig {
        SimConfig::paper_defaults()
    }

    fn template(joins: u32, ms: u64) -> QueryTemplate {
        QueryTemplate {
            id: ClassId(0),
            joins,
            relations: (0..=joins).map(RelationId).collect(),
            base_cost: SimDuration::from_millis(ms),
            result_bytes: 1_000,
        }
    }

    fn hw(cpu: f64, io: f64, buf: f64, hash: bool) -> NodeHardware {
        NodeHardware {
            cpu_ghz: cpu,
            io_mbps: io,
            buffer_mb: buf,
            hash_join: hash,
        }
    }

    #[test]
    fn reference_hardware_runs_at_base_cost() {
        let h = hw(2.3, 42.5, 6.0, true);
        let t = h.execution_time(&template(10, 1_000), &cfg());
        assert!((t.as_millis_f64() - 1_000.0).abs() < 1.0, "{t}");
    }

    #[test]
    fn faster_cpu_runs_faster() {
        let slow = hw(1.0, 42.5, 6.0, true);
        let fast = hw(3.5, 42.5, 6.0, true);
        let t = template(10, 1_000);
        assert!(fast.execution_time(&t, &cfg()) < slow.execution_time(&t, &cfg()));
    }

    #[test]
    fn io_speed_matters() {
        let slow = hw(2.3, 5.0, 6.0, true);
        let fast = hw(2.3, 80.0, 6.0, true);
        let t = template(0, 1_000);
        assert!(fast.execution_time(&t, &cfg()) < slow.execution_time(&t, &cfg()));
    }

    #[test]
    fn small_buffer_penalizes_join_heavy_queries_only() {
        let tight = hw(2.3, 42.5, 2.0, true);
        let roomy = hw(2.3, 42.5, 10.0, true);
        let scan = template(0, 1_000);
        let joins = template(49, 1_000);
        // 0-join query: no spill penalty.
        assert!(
            (tight.execution_time(&scan, &cfg()).as_millis_f64()
                - roomy.execution_time(&scan, &cfg()).as_millis_f64())
            .abs()
                < 1.0
        );
        assert!(tight.execution_time(&joins, &cfg()) > roomy.execution_time(&joins, &cfg()));
    }

    #[test]
    fn merge_only_nodes_pay_join_penalty() {
        let merge = hw(2.3, 42.5, 6.0, false);
        let hash = hw(2.3, 42.5, 6.0, true);
        let joins = template(5, 1_000);
        let scan = template(0, 1_000);
        let ratio = merge.execution_time(&joins, &cfg()).as_millis_f64()
            / hash.execution_time(&joins, &cfg()).as_millis_f64();
        assert!((ratio - 1.3).abs() < 0.01);
        assert_eq!(
            merge.execution_time(&scan, &cfg()),
            hash.execution_time(&scan, &cfg())
        );
    }

    #[test]
    fn sampled_hardware_in_ranges() {
        let c = cfg();
        let mut rng = DetRng::seed_from_u64(5);
        let mut hash_count = 0;
        for _ in 0..500 {
            let h = NodeHardware::sample(&c, &mut rng);
            assert!((1.0..3.5).contains(&h.cpu_ghz));
            assert!((5.0..80.0).contains(&h.io_mbps));
            assert!((2.0..10.0).contains(&h.buffer_mb));
            hash_count += u32::from(h.hash_join);
        }
        // ~95% hash join.
        assert!((450..=500).contains(&hash_count), "{hash_count}");
    }

    #[test]
    fn fifo_queue_accumulates_backlog() {
        let mut n = NodeState::new(hw(2.3, 42.5, 6.0, true));
        let now = SimTime::from_millis(100);
        let f1 = n.accept(now, SimDuration::from_millis(400));
        assert_eq!(f1, SimTime::from_millis(500));
        let f2 = n.accept(now, SimDuration::from_millis(100));
        assert_eq!(f2, SimTime::from_millis(600), "second query queues behind");
        assert_eq!(n.queued, 2);
        assert_eq!(n.backlog(now), SimDuration::from_millis(500));
        n.complete();
        assert_eq!(n.queued, 1);
    }

    #[test]
    fn idle_node_starts_immediately() {
        let mut n = NodeState::new(hw(2.3, 42.5, 6.0, true));
        let f = n.accept(SimTime::from_millis(1_000), SimDuration::from_millis(50));
        assert_eq!(f, SimTime::from_millis(1_050));
        // Long after finishing, backlog is zero.
        assert_eq!(n.backlog(SimTime::from_millis(2_000)), SimDuration::ZERO);
    }

    #[test]
    fn kill_then_revive_resets_queue_but_keeps_busy_time() {
        let mut n = NodeState::new(hw(2.3, 42.5, 6.0, true));
        let now = SimTime::from_millis(100);
        n.accept(now, SimDuration::from_millis(400));
        let busy_before = n.busy;
        n.kill();
        assert!(!n.alive);
        assert_eq!(n.queued, 0, "crash loses the queue");
        let later = SimTime::from_millis(250);
        n.revive(later);
        assert!(n.alive);
        assert_eq!(n.backlog(later), SimDuration::ZERO, "rejoins idle");
        assert_eq!(n.busy, busy_before, "utilization survives incarnations");
    }

    #[test]
    fn estimated_completion_matches_accept() {
        let mut n = NodeState::new(hw(2.3, 42.5, 6.0, true));
        let now = SimTime::from_millis(0);
        n.accept(now, SimDuration::from_millis(300));
        let est = n.estimated_completion(now, SimDuration::from_millis(200));
        let actual = n.accept(now, SimDuration::from_millis(200));
        assert_eq!(now + est, actual);
    }
}
