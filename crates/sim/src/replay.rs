//! Golden-trace replay: re-run a recorded telemetry trace and diff it
//! byte-for-byte against a checked-in golden.
//!
//! The simulator's JSONL traces are byte-deterministic (sim-time stamps,
//! seeded randomness), so a trace is a complete behavioural fingerprint
//! of the market: every price move, rejection, assignment, drop and crash
//! in order. Checking a golden trace into the repo and replaying it in CI
//! (`scripts/check_golden.sh`, the `check_golden` bin) turns any
//! hot-path refactor that silently changes market behaviour — a reordered
//! float reduction, an off-by-one in the period loop, a perturbed pricer
//! constant — into a loud failure that names the first diverging event.
//!
//! The diff is deliberately primitive: line-by-line byte equality, first
//! divergence wins. Anything smarter (field tolerance, reordering
//! windows) would re-introduce exactly the silent drift this exists to
//! catch.

use crate::tracedump::{run_trace_dump, TraceDump, TraceDumpSpec};
use qa_simnet::json::ToJson;
use qa_simnet::telemetry::TraceRecord;
use std::fmt::Write as _;

/// Seed of the checked-in golden trace (`goldens/trace_seed2007.jsonl`).
pub const GOLDEN_SEED: u64 = 2007;

/// Repo-relative path of the checked-in golden trace.
pub const GOLDEN_PATH: &str = "goldens/trace_seed2007.jsonl";

/// The golden-trace run shape: small enough that the checked-in file
/// stays reviewable, rich enough to cover the full event taxonomy
/// (market dynamics, loss, one crash/recovery).
///
/// **Changing anything here invalidates the checked-in golden** —
/// regenerate with `check_golden --bless` and commit the diff with the
/// change that caused it.
pub fn golden_spec(seed: u64) -> TraceDumpSpec {
    let mut spec = TraceDumpSpec::ci(seed);
    spec.config.num_nodes = 5;
    spec.secs = 4;
    spec.kill = Some((0, 1_000, 2_500));
    spec
}

/// Runs the golden spec at `seed` and returns the dump.
pub fn run_golden(seed: u64) -> TraceDump {
    run_trace_dump(&golden_spec(seed))
}

/// Where two traces first diverge, 1-based. `None` on a side means the
/// trace ended there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// 1-based line number of the first difference.
    pub line: usize,
    /// The golden trace's line, if it has one.
    pub golden: Option<String>,
    /// The replayed trace's line, if it has one.
    pub actual: Option<String>,
}

/// First line where `actual` differs from `golden`, or `None` when the
/// traces are byte-identical.
pub fn first_divergence(golden: &str, actual: &str) -> Option<Divergence> {
    let mut g = golden.lines();
    let mut a = actual.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (g.next(), a.next()) {
            (None, None) => return None,
            (golden_line, actual_line) => {
                if golden_line == actual_line {
                    continue;
                }
                return Some(Divergence {
                    line,
                    golden: golden_line.map(str::to_string),
                    actual: actual_line.map(str::to_string),
                });
            }
        }
    }
}

/// Index of the first differing byte between two lines.
fn first_diff_byte(a: &str, b: &str) -> usize {
    a.bytes()
        .zip(b.bytes())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.len().min(b.len()))
}

/// Renders a pointed first-divergence report: the event index, up to
/// `context` preceding golden lines for orientation, both divergent
/// lines, and a caret at the first differing byte.
pub fn render_divergence(golden: &str, d: &Divergence, context: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "traces diverge at event {} (1-based)", d.line);
    let lines: Vec<&str> = golden.lines().collect();
    let from = d.line.saturating_sub(context + 1);
    for (i, line) in lines.iter().enumerate().take(d.line - 1).skip(from) {
        let _ = writeln!(out, "  = {:>6}  {line}", i + 1);
    }
    match (&d.golden, &d.actual) {
        (Some(g), Some(a)) => {
            let _ = writeln!(out, "  - golden  {g}");
            let _ = writeln!(out, "  + actual  {a}");
            let caret = first_diff_byte(g, a);
            let _ = writeln!(
                out,
                "            {}^ first differing byte",
                " ".repeat(caret)
            );
        }
        (Some(g), None) => {
            let _ = writeln!(out, "  - golden  {g}");
            let _ = writeln!(out, "  + actual  <trace ends here>");
        }
        (None, Some(a)) => {
            let _ = writeln!(out, "  - golden  <trace ends here>");
            let _ = writeln!(out, "  + actual  {a}");
        }
        (None, None) => {}
    }
    out
}

/// Replays the golden spec and compares byte-for-byte against
/// `golden_text`. Also validates every golden line through the strict
/// trace parser, so a hand-edited golden that drifted from the schema
/// fails even when the bytes happen to match.
///
/// Returns the number of records checked, or the full failure report.
///
/// # Errors
/// A parse failure in the golden, or a rendered first-divergence report.
pub fn check_golden_text(golden_text: &str, seed: u64) -> Result<usize, String> {
    for (i, line) in golden_text.lines().enumerate() {
        let record = TraceRecord::parse_line(line)
            .map_err(|e| format!("golden line {}: not a valid trace record: {e}", i + 1))?;
        let redump = record.to_json().dump();
        if redump != line {
            return Err(format!(
                "golden line {}: not canonical\n  golden: {line}\n  redump: {redump}",
                i + 1
            ));
        }
    }
    let dump = run_golden(seed);
    match first_divergence(golden_text, &dump.jsonl) {
        None => Ok(dump.records.len()),
        Some(d) => Err(render_divergence(golden_text, &d, 3)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_run_is_byte_deterministic_and_self_checks() {
        let a = run_golden(GOLDEN_SEED);
        let b = run_golden(GOLDEN_SEED);
        assert_eq!(a.jsonl, b.jsonl, "golden spec must replay byte-identically");
        assert!(first_divergence(&a.jsonl, &b.jsonl).is_none());
        assert_eq!(
            check_golden_text(&a.jsonl, GOLDEN_SEED),
            Ok(a.records.len())
        );
        // The golden shape covers the market + fault taxonomy.
        let kinds: std::collections::BTreeSet<&str> =
            a.records.iter().map(|r| r.event.kind()).collect();
        for required in [
            "price_adjusted",
            "supply_computed",
            "query_assigned",
            "query_completed",
            "message_dropped",
            "node_crashed",
            "node_recovered",
            "period_started",
        ] {
            assert!(kinds.contains(required), "golden lacks {required}");
        }
    }

    #[test]
    fn single_byte_perturbation_is_caught_and_pointed_at() {
        let dump = run_golden(GOLDEN_SEED);
        // Perturb one digit deep in the trace — the kind of change a
        // wrong pricer constant produces.
        let victim_line = dump.jsonl.lines().count() / 2;
        let mut lines: Vec<String> = dump.jsonl.lines().map(str::to_string).collect();
        let perturbed_line = lines[victim_line]
            .chars()
            .rev()
            .collect::<String>()
            .replacen('0', "1", 1)
            .chars()
            .rev()
            .collect::<String>();
        let perturbed = if perturbed_line != lines[victim_line] {
            lines[victim_line] = perturbed_line;
            lines.join("\n") + "\n"
        } else {
            // No zero to flip on that line: append a digit instead.
            lines[victim_line].push('9');
            lines.join("\n") + "\n"
        };
        let d = first_divergence(&perturbed, &dump.jsonl).expect("must diverge");
        assert_eq!(
            d.line,
            victim_line + 1,
            "divergence must name the first bad event"
        );
        let report = render_divergence(&perturbed, &d, 3);
        assert!(report.contains(&format!("diverge at event {}", victim_line + 1)));
        assert!(report.contains("- golden"));
        assert!(report.contains("+ actual"));
        assert!(report.contains("first differing byte"));
        let err = check_golden_text(&perturbed, GOLDEN_SEED);
        assert!(err.is_err(), "perturbed golden must fail the check");
    }

    #[test]
    fn length_mismatch_reports_the_short_side() {
        let d = first_divergence("a\nb\n", "a\n").expect("must diverge");
        assert_eq!(d.line, 2);
        assert_eq!(d.golden.as_deref(), Some("b"));
        assert_eq!(d.actual, None);
        let r = render_divergence("a\nb\n", &d, 3);
        assert!(r.contains("<trace ends here>"));
    }

    #[test]
    fn invalid_golden_lines_are_rejected_before_the_run() {
        assert!(check_golden_text("not json\n", GOLDEN_SEED)
            .unwrap_err()
            .contains("golden line 1"));
    }
}
