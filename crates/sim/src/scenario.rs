//! Canned experiment worlds.
//!
//! A [`Scenario`] bundles everything a run needs besides the trace: node
//! hardware, the dataset (who mirrors what), the query templates, and the
//! derived per-node/per-class execution-time matrix the allocators consult.

use crate::config::SimConfig;
use crate::node::NodeHardware;
use qa_simnet::{DetRng, SimDuration};
use qa_workload::dataset::{Dataset, DatasetConfig, Relation};
use qa_workload::ids::RelationId;
use qa_workload::template::{QueryTemplate, TemplateConfig, TemplateSet};
use qa_workload::{ClassId, NodeId};

/// Parameters of the two-class sinusoid world (§5.1 first experiment set).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoClassParams {
    /// Q1 average execution time (paper: 1 000 ms).
    pub q1_ms: u64,
    /// Q2 average execution time (paper: 500 ms).
    pub q2_ms: u64,
    /// Fraction of nodes able to evaluate Q2 (paper: one half).
    pub q2_node_fraction: f64,
}

impl Default for TwoClassParams {
    fn default() -> Self {
        TwoClassParams {
            q1_ms: 1_000,
            q2_ms: 500,
            q2_node_fraction: 0.5,
        }
    }
}

/// A fully built experiment world.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The simulation configuration.
    pub config: SimConfig,
    /// The query classes.
    pub templates: TemplateSet,
    /// The data layout.
    pub dataset: Dataset,
    /// Per-node hardware.
    pub hardware: Vec<NodeHardware>,
    /// `exec_times_ms[i][k]` — node i's execution time for class k in ms
    /// (`None` when the node lacks the data).
    pub exec_times_ms: Vec<Vec<Option<f64>>>,
    /// `capable[k]` — nodes able to evaluate class k.
    pub capable: Vec<Vec<NodeId>>,
}

impl Scenario {
    /// Builds the derived matrices from parts.
    pub fn assemble(
        config: SimConfig,
        templates: TemplateSet,
        dataset: Dataset,
        hardware: Vec<NodeHardware>,
    ) -> Scenario {
        config.validate();
        assert_eq!(hardware.len(), config.num_nodes);
        assert_eq!(dataset.num_nodes(), config.num_nodes);
        let capable: Vec<Vec<NodeId>> =
            templates.iter().map(|t| dataset.capable_nodes(t)).collect();
        let exec_times_ms: Vec<Vec<Option<f64>>> = (0..config.num_nodes)
            .map(|i| {
                templates
                    .iter()
                    .map(|t| {
                        if capable[t.id.index()].contains(&NodeId(i as u32)) {
                            Some(hardware[i].execution_time(t, &config).as_millis_f64())
                        } else {
                            None
                        }
                    })
                    .collect()
            })
            .collect();
        Scenario {
            config,
            templates,
            dataset,
            hardware,
            exec_times_ms,
            capable,
        }
    }

    /// The two-class sinusoid world: Q1 evaluable everywhere, Q2 on a node
    /// fraction only (the paper chose the classes "to avoid trivial
    /// solutions").
    pub fn two_class(config: SimConfig, params: TwoClassParams) -> Scenario {
        let mut rng = DetRng::seed_from_u64(config.seed).derive("two-class");
        let n = config.num_nodes;
        let q2_nodes = ((n as f64 * params.q2_node_fraction).round() as usize).clamp(1, n);
        let q2_mirror: Vec<NodeId> = rng
            .sample_indices(n, q2_nodes)
            .into_iter()
            .map(|i| NodeId(i as u32))
            .collect();
        let relations = vec![
            Relation {
                id: RelationId(0),
                size_bytes: 10 << 20,
                attributes: 10,
                mirrors: (0..n).map(|i| NodeId(i as u32)).collect(),
            },
            Relation {
                id: RelationId(1),
                size_bytes: 10 << 20,
                attributes: 10,
                mirrors: q2_mirror,
            },
        ];
        let dataset = Dataset::from_relations(n, relations);
        let templates = TemplateSet::from_templates(vec![
            QueryTemplate {
                id: ClassId(0),
                joins: 2,
                relations: vec![RelationId(0)],
                base_cost: SimDuration::from_millis(params.q1_ms),
                result_bytes: 32 * 1024,
            },
            QueryTemplate {
                id: ClassId(1),
                joins: 1,
                relations: vec![RelationId(1)],
                base_cost: SimDuration::from_millis(params.q2_ms),
                result_bytes: 16 * 1024,
            },
        ]);
        let hardware: Vec<NodeHardware> = (0..n)
            .map(|_| NodeHardware::sample(&config, &mut rng))
            .collect();
        Scenario::assemble(config, templates, dataset, hardware)
    }

    /// The Table-3 world: 1 000 relations, ~5 mirrors, 100 classes with
    /// 0–49 joins (Fig. 6's zipf experiment).
    ///
    /// Capability rule: the paper's execution framework (Mariposa / the
    /// Query-Process-Trading algorithms, §2.1) lets a node evaluate a query
    /// while fetching parts of the data from peers, so a node is *capable*
    /// of a class when it mirrors the class's fact relation
    /// (`relations[0]`) — about 5 candidates per class — and pays a
    /// remote-data surcharge proportional to the fraction of the remaining
    /// relations it does not hold locally.
    pub fn table3(config: SimConfig) -> Scenario {
        config.validate();
        let mut rng = DetRng::seed_from_u64(config.seed).derive("table3");
        let ds_cfg = DatasetConfig {
            num_nodes: config.num_nodes,
            ..DatasetConfig::default()
        };
        let dataset = Dataset::generate(&ds_cfg, &mut rng.derive("dataset"));
        let tpl_cfg = TemplateConfig {
            num_relations: dataset.num_relations(),
            ..TemplateConfig::default()
        };
        let templates = TemplateSet::generate(&tpl_cfg, &mut rng.derive("templates"));
        let mut hw_rng = rng.derive("hardware");
        let hardware: Vec<NodeHardware> = (0..config.num_nodes)
            .map(|_| NodeHardware::sample(&config, &mut hw_rng))
            .collect();

        let capable: Vec<Vec<NodeId>> = templates
            .iter()
            .map(|t| {
                let fact = t.relations.first().copied();
                match fact {
                    Some(f) => dataset.relation(f).mirrors.clone(),
                    None => (0..config.num_nodes).map(|i| NodeId(i as u32)).collect(),
                }
            })
            .collect();
        let exec_times_ms: Vec<Vec<Option<f64>>> = (0..config.num_nodes)
            .map(|i| {
                templates
                    .iter()
                    .map(|t| {
                        if !capable[t.id.index()].contains(&NodeId(i as u32)) {
                            return None;
                        }
                        let missing = t
                            .relations
                            .iter()
                            .filter(|&&r| !dataset.node_has(NodeId(i as u32), r))
                            .count() as f64;
                        let frac = missing / t.relations.len().max(1) as f64;
                        let base = hardware[i].execution_time(t, &config).as_millis_f64();
                        // Remote fetches add up to +50% for a fully remote
                        // join tail.
                        Some(base * (1.0 + 0.5 * frac))
                    })
                    .collect()
            })
            .collect();
        Scenario {
            config,
            templates,
            dataset,
            hardware,
            exec_times_ms,
            capable,
        }
    }

    /// Aggregate system capacity in queries/second for a demand mix
    /// (`mix[k]` = fraction of arrivals in class k; must sum to ~1).
    ///
    /// Each node contributes the reciprocal of its mix-weighted mean
    /// execution time over the classes it can run. This is the yardstick
    /// the paper's "% of total system capacity" axes use.
    pub fn capacity_qps(&self, mix: &[f64]) -> f64 {
        assert_eq!(mix.len(), self.templates.num_classes());
        let mut total = 0.0;
        for exec in &self.exec_times_ms {
            let mut weighted = 0.0;
            let mut weight = 0.0;
            for (k, t) in exec.iter().enumerate() {
                if let Some(t) = t {
                    weighted += mix[k] * t;
                    weight += mix[k];
                }
            }
            if weight > 0.0 && weighted > 0.0 {
                let mean_ms = weighted / weight;
                total += 1_000.0 / mean_ms;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_class_world_shape() {
        let s = Scenario::two_class(SimConfig::small_test(1), TwoClassParams::default());
        assert_eq!(s.capable[0].len(), 10, "Q1 runs everywhere");
        assert_eq!(s.capable[1].len(), 5, "Q2 on half the nodes");
        // Exec times near the configured averages on reference hardware.
        let some_t = s.exec_times_ms[0][0].unwrap();
        assert!((400.0..2_500.0).contains(&some_t), "{some_t}");
    }

    #[test]
    fn two_class_exec_matrix_consistent_with_capability() {
        let s = Scenario::two_class(SimConfig::small_test(2), TwoClassParams::default());
        for i in 0..10 {
            let can_q2 = s.capable[1].contains(&NodeId(i as u32));
            assert_eq!(s.exec_times_ms[i][1].is_some(), can_q2);
            assert!(s.exec_times_ms[i][0].is_some());
        }
    }

    #[test]
    fn table3_world_every_class_has_capable_nodes() {
        let mut cfg = SimConfig::small_test(3);
        cfg.num_nodes = 30;
        let s = Scenario::table3(cfg);
        assert_eq!(s.templates.num_classes(), 100);
        for (k, cap) in s.capable.iter().enumerate() {
            assert!(!cap.is_empty(), "class {k} evaluable nowhere");
        }
    }

    #[test]
    fn capacity_scales_with_nodes() {
        let small = Scenario::two_class(SimConfig::small_test(4), TwoClassParams::default());
        let mut big_cfg = SimConfig::small_test(4);
        big_cfg.num_nodes = 20;
        let big = Scenario::two_class(big_cfg, TwoClassParams::default());
        let mix = [2.0 / 3.0, 1.0 / 3.0];
        assert!(big.capacity_qps(&mix) > 1.5 * small.capacity_qps(&mix));
    }

    #[test]
    fn scenarios_are_deterministic() {
        let a = Scenario::two_class(SimConfig::small_test(7), TwoClassParams::default());
        let b = Scenario::two_class(SimConfig::small_test(7), TwoClassParams::default());
        assert_eq!(a.exec_times_ms, b.exec_times_ms);
        assert_eq!(a.capable, b.capable);
    }
}
