//! Simulation configuration (Table 3), plus the hierarchical-market
//! broker-tier configuration (DESIGN.md §12).

use qa_core::QantConfig;
use qa_economics::parent::{ParentMarketConfig, ParentMechanism};
use qa_simnet::{LinkSpec, SimDuration};

/// Federation-level simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Master seed; every random stream derives from it.
    pub seed: u64,
    /// Number of nodes `I` (paper: 100).
    pub num_nodes: usize,
    /// Time period `τ` length `T` (paper: 500 ms).
    pub period: SimDuration,
    /// CPU speed range in GHz (paper: 1–3.5, avg 2.3).
    pub cpu_ghz: (f64, f64),
    /// Reference CPU speed the template base costs are calibrated to.
    pub reference_ghz: f64,
    /// I/O speed range in MB/s (paper: 5–80, avg 42.5).
    pub io_mbps: (f64, f64),
    /// Reference I/O speed.
    pub reference_io_mbps: f64,
    /// Sort/hash buffer size range in MB (paper: 2–10, avg 6).
    pub buffer_mb: (f64, f64),
    /// Fraction of nodes with hash-join capability (paper: 95/100; the
    /// rest merge-scan only and pay a join penalty).
    pub hash_join_fraction: f64,
    /// Inter-node link model used to charge allocation-protocol latency.
    pub link: LinkSpec,
    /// QA-NT configuration.
    pub qant: QantConfig,
    /// Relative error of the completion estimates the Greedy baseline
    /// collects (`±greedy_estimate_error`, multiplicative). Real clients
    /// never see perfectly fresh queue state (the paper's EXPLAIN-based
    /// estimates "were usually incorrect"); 0 would model an omniscient
    /// greedy.
    pub greedy_estimate_error: f64,
}

impl SimConfig {
    /// The Table-3 defaults. The market runs unconditionally, as in the
    /// paper's own experiments; the §5.1 threshold deployment mode is
    /// available via `qant.price_threshold`.
    pub fn paper_defaults() -> SimConfig {
        SimConfig {
            seed: 2007,
            num_nodes: 100,
            period: SimDuration::from_millis(500),
            cpu_ghz: (1.0, 3.5),
            reference_ghz: 2.3,
            io_mbps: (5.0, 80.0),
            reference_io_mbps: 42.5,
            buffer_mb: (2.0, 10.0),
            hash_join_fraction: 0.95,
            link: LinkSpec::fast_ethernet(),
            qant: QantConfig::default(),
            greedy_estimate_error: 0.25,
        }
    }

    /// A small configuration for fast unit tests (same shape, 10 nodes).
    pub fn small_test(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            num_nodes: 10,
            ..SimConfig::paper_defaults()
        }
    }

    /// The paper defaults scaled to an arbitrary federation size — the
    /// `fig_scale` sweep worlds (100 → 10 000 nodes).
    pub fn scaled(num_nodes: usize, seed: u64) -> SimConfig {
        SimConfig {
            seed,
            num_nodes,
            ..SimConfig::paper_defaults()
        }
    }

    /// Validates ranges.
    ///
    /// # Panics
    /// Panics on inverted ranges or out-of-range fractions.
    pub fn validate(&self) {
        assert!(self.num_nodes > 0);
        assert!(!self.period.is_zero());
        assert!(self.cpu_ghz.0 > 0.0 && self.cpu_ghz.0 <= self.cpu_ghz.1);
        assert!(self.io_mbps.0 > 0.0 && self.io_mbps.0 <= self.io_mbps.1);
        assert!(self.buffer_mb.0 > 0.0 && self.buffer_mb.0 <= self.buffer_mb.1);
        assert!((0.0..=1.0).contains(&self.hash_join_fraction));
        assert!(self.reference_ghz > 0.0 && self.reference_io_mbps > 0.0);
        assert!((0.0..1.0).contains(&self.greedy_estimate_error));
    }
}

/// Two-tier market configuration: when installed on a sharded run, every
/// shard gets a broker that bids its aggregate supply/ln-price signals on
/// a parent market, and the clearing result (quotas + clearing prices)
/// drives the cross-shard router instead of the raw weight-proportional
/// signals. `None` (the default everywhere) is the degenerate one-level
/// case — the PR 9 router, byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrokerConfig {
    /// The parent market's mechanism and price dynamics.
    pub market: ParentMarketConfig,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig::qant()
    }
}

impl BrokerConfig {
    /// QA-NT at the broker tier: one greedy cheapest-first clearing per
    /// window, parent prices adjusted from unmet demand / unsold capacity.
    pub fn qant() -> BrokerConfig {
        BrokerConfig {
            market: ParentMarketConfig {
                mechanism: ParentMechanism::QaNt,
                ..ParentMarketConfig::default()
            },
        }
    }

    /// WALRAS-style tâtonnement at the broker tier: the parent iterates
    /// its ln-price against the brokers' aggregate supply curves until the
    /// window clears within tolerance.
    pub fn walras() -> BrokerConfig {
        BrokerConfig {
            market: ParentMarketConfig {
                mechanism: ParentMechanism::Walras,
                ..ParentMarketConfig::default()
            },
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on out-of-range market parameters.
    pub fn validate(&self) {
        self.market.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broker_presets_pick_their_mechanism() {
        let q = BrokerConfig::qant();
        q.validate();
        assert_eq!(q.market.mechanism, ParentMechanism::QaNt);
        let w = BrokerConfig::walras();
        w.validate();
        assert_eq!(w.market.mechanism, ParentMechanism::Walras);
        assert_eq!(BrokerConfig::default(), q);
    }

    #[test]
    fn paper_defaults_match_table3() {
        let c = SimConfig::paper_defaults();
        c.validate();
        assert_eq!(c.num_nodes, 100);
        assert_eq!(c.period, SimDuration::from_millis(500));
        assert_eq!(c.cpu_ghz, (1.0, 3.5));
        assert_eq!(c.io_mbps, (5.0, 80.0));
        assert_eq!(c.buffer_mb, (2.0, 10.0));
        assert!((c.hash_join_fraction - 0.95).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn validate_rejects_inverted_range() {
        let mut c = SimConfig::paper_defaults();
        c.cpu_ghz = (3.0, 1.0);
        c.validate();
    }
}
