//! Sharded federation engine.
//!
//! Partitions one federation into `S` shards — contiguous node slices,
//! each with its own event queue, arrival cursor, market state and
//! flattened exec/availability matrices — and runs the intra-period hot
//! loop of every shard in parallel. Cross-shard coordination happens only
//! at period boundaries, as batched aggregate signals: each shard reports
//! per-class remaining supply and the log of its geometric-mean price, and
//! the router uses those aggregates to place the next window's arrivals.
//! This is the WALRAS-style multicommodity decomposition (see
//! `PAPERS.md`): sub-markets iterate locally and exchange only aggregated
//! price/excess-demand signals, never per-query traffic.
//!
//! ## Determinism contract
//!
//! * `S = 1` is byte-identical to the flat [`Federation::run`]: the single
//!   shard is the parent scenario itself (same seed, same market jitter
//!   stream), the window loop replays the flat event order exactly, and
//!   the boundary signal reads never perturb the market.
//! * Any `S` is byte-stable across thread budgets: shards share nothing
//!   within a period, the router is a pure function of the previous
//!   boundary's signals, and the merge runs in shard-index order.
//!
//! ## Thread budget
//!
//! The shard layer and the per-shard eq.-4 supply solves share one budget
//! via [`split_budget`]: `S` shards on a `B`-core budget step on
//! `min(B, S)` outer workers, each solving with `B / outer` inner threads
//! — never `S × B` oversubscription.

use crate::federation::{Federation, RunOutcome};
use crate::scenario::Scenario;
use qa_core::MechanismKind;
use qa_simnet::{par_for_each_chunk_mut, split_budget, DetRng, SimTime};
use qa_workload::dataset::{Dataset, Relation};
use qa_workload::ids::RelationId;
use qa_workload::{NodeId, QueryEvent, Trace};

/// One shard: a contiguous node slice `[lo, hi)` of the parent federation
/// re-packaged as a self-contained scenario with local node ids `0..hi-lo`.
pub struct ShardSpec {
    /// First parent node id owned by this shard.
    pub lo: usize,
    /// One past the last parent node id owned by this shard.
    pub hi: usize,
    /// The shard-local world (remapped dataset, hardware, exec matrix,
    /// capability lists).
    pub scenario: Scenario,
}

/// The static partition of one scenario into shards, plus the per-class
/// routing table.
pub struct ShardPlan {
    shards: Vec<ShardSpec>,
    /// `home_shards[k]` — shards holding at least one node capable of
    /// class `k` (possibly empty when the parent itself has none; such
    /// queries route to shard 0 and count as unservable there, exactly
    /// like the flat engine's `Impossible` outcome).
    home_shards: Vec<Vec<usize>>,
    num_classes: usize,
}

/// Result of a sharded run: the merged measurements plus the
/// decomposition's own diagnostics.
#[derive(Debug)]
pub struct ShardedOutcome {
    /// Merged per-shard measurements (shard-index merge order).
    pub outcome: RunOutcome,
    /// Shard count the run used.
    pub num_shards: usize,
    /// Simulated period boundaries stepped by the window loop.
    pub periods: usize,
    /// Cross-shard coordination messages: one report up and one broadcast
    /// down per shard per boundary. Kept separate from
    /// `outcome.metrics.messages` (the allocation-protocol count), so the
    /// `S = 1` output stays byte-identical to the flat engine.
    pub cross_messages: u64,
    /// Per-period mean |Δ ln p| over classes (price-signal movement);
    /// drives [`ShardedOutcome::convergence_period`].
    pub signal_history: Vec<f64>,
}

impl ShardedOutcome {
    /// First period whose mean |Δ ln p| fell below `eps`, if any — the
    /// sweep's convergence yardstick.
    pub fn convergence_period(&self, eps: f64) -> Option<usize> {
        self.signal_history.iter().position(|&d| d < eps)
    }
}

impl ShardPlan {
    /// Partitions `parent` into `num_shards` contiguous node slices
    /// (clamped to the node count). Shard `s` owns
    /// `[s·N/S, (s+1)·N/S)`; its sub-scenario keeps the full template
    /// set and relation schema but filters mirrors, hardware, exec times
    /// and capability lists to the slice, remapping node ids to
    /// `0..n_s`. With one shard the parent scenario is used as-is (same
    /// seed), which is what makes `S = 1` byte-identical to the flat run;
    /// with more, each shard derives its own market-jitter seed.
    pub fn build(parent: &Scenario, num_shards: usize) -> ShardPlan {
        assert!(num_shards >= 1, "need at least one shard");
        let n = parent.config.num_nodes;
        let s_count = num_shards.min(n);
        let k = parent.templates.num_classes();
        let mut shards = Vec::with_capacity(s_count);
        if s_count == 1 {
            shards.push(ShardSpec {
                lo: 0,
                hi: n,
                scenario: parent.clone(),
            });
        } else {
            for s in 0..s_count {
                let lo = s * n / s_count;
                let hi = (s + 1) * n / s_count;
                shards.push(ShardSpec {
                    lo,
                    hi,
                    scenario: slice_scenario(parent, s, lo, hi),
                });
            }
        }
        let home_shards: Vec<Vec<usize>> = (0..k)
            .map(|kc| {
                shards
                    .iter()
                    .enumerate()
                    .filter(|(_, sh)| !sh.scenario.capable[kc].is_empty())
                    .map(|(s, _)| s)
                    .collect()
            })
            .collect();
        ShardPlan {
            shards,
            home_shards,
            num_classes: k,
        }
    }

    /// The shards, in node order.
    pub fn shards(&self) -> &[ShardSpec] {
        &self.shards
    }

    /// Shards holding at least one node capable of class `k`.
    pub fn home_shards(&self, k: usize) -> &[usize] {
        &self.home_shards[k]
    }

    /// How a total thread budget splits between the shard layer and each
    /// shard's intra-period solves: `(outer, inner)` with
    /// `outer × inner ≤ budget` (see [`split_budget`]).
    pub fn thread_split(&self, budget: usize) -> (usize, usize) {
        split_budget(budget, self.shards.len())
    }

    /// Runs the trace through the sharded engine on the ambient
    /// [`qa_simnet::thread_budget`].
    pub fn run(&self, trace: &Trace) -> ShardedOutcome {
        self.run_with_budget(trace, qa_simnet::thread_budget())
    }

    /// [`ShardPlan::run`] with an explicit total thread budget. The output
    /// is identical at any budget; the budget only decides how the shard
    /// stepping and the per-shard supply solves share the machine.
    pub fn run_with_budget(&self, trace: &Trace, budget: usize) -> ShardedOutcome {
        let s_count = self.shards.len();
        let k = self.num_classes;
        let (outer, inner) = self.thread_split(budget);
        let empty = Trace::from_events(Vec::new());
        let mut feds: Vec<Federation> = self
            .shards
            .iter()
            .map(|sh| {
                let mut f = Federation::new(&sh.scenario, MechanismKind::QaNt, &empty);
                f.set_intra_threads(inner);
                f.set_more_arrivals(true);
                f.begin_run();
                f
            })
            .collect();

        // Boundary signals: per-shard remaining supply and mean ln price
        // per class, the router's weights/credits over each class's home
        // shards, and the previous boundary's class-mean ln price for the
        // convergence series.
        let mut supply: Vec<Vec<u64>> = vec![vec![0; k]; s_count];
        let mut lnp: Vec<Vec<f64>> = vec![vec![0.0; k]; s_count];
        let mut weights: Vec<Vec<f64>> = (0..k)
            .map(|kc| vec![1.0; self.home_shards[kc].len()])
            .collect();
        let mut credits: Vec<Vec<f64>> = (0..k)
            .map(|kc| vec![0.0; self.home_shards[kc].len()])
            .collect();
        let mut prev_mean_lnp = vec![0.0; k];
        collect_signals(&feds, &mut supply, &mut lnp);
        // Initial refresh: markets opened their first period during
        // construction, so weights and the Δ-baseline come from t = 0.
        update_weights(
            &self.home_shards,
            &supply,
            &lnp,
            &mut weights,
            &mut prev_mean_lnp,
        );

        let events = trace.events();
        let period = self.shards[0].scenario.config.period;
        let mut cursor = 0usize;
        let mut boundary = SimTime::ZERO + period;
        let mut periods = 0usize;
        let mut cross_messages = 0u64;
        let mut signal_history = Vec::new();
        let mut buffers: Vec<Vec<QueryEvent>> = vec![Vec::new(); s_count];
        while cursor < events.len() {
            // The window `(previous boundary, boundary]`: arrivals at
            // exactly the boundary precede the `PeriodStart` there, same
            // as the flat engine's arrival-cursor tie rule.
            let end = cursor + events[cursor..].partition_point(|e| e.at <= boundary);
            for e in &events[cursor..end] {
                let kc = e.class.index();
                let homes = &self.home_shards[kc];
                let s = match homes.len() {
                    // Unservable everywhere: park on shard 0, which
                    // reports it `Impossible` exactly like the flat run.
                    0 => 0,
                    1 => homes[0],
                    _ => pick_home(homes, &weights[kc], &mut credits[kc]),
                };
                let sh = &self.shards[s];
                let n_s = sh.hi - sh.lo;
                let o = e.origin.index();
                // Shard-local origin: own clients keep their identity;
                // remote clients fold onto a local stand-in (the link
                // model is distance-free, so only the fairness
                // bookkeeping sees the difference).
                let origin = if o >= sh.lo && o < sh.hi {
                    NodeId((o - sh.lo) as u32)
                } else {
                    NodeId((o % n_s.max(1)) as u32)
                };
                buffers[s].push(QueryEvent { origin, ..*e });
            }
            cursor = end;
            let last_window = cursor == events.len();
            for (s, fed) in feds.iter_mut().enumerate() {
                fed.push_arrivals(&buffers[s]);
                buffers[s].clear();
                if last_window {
                    fed.set_more_arrivals(false);
                }
            }
            par_for_each_chunk_mut(outer, &mut feds, |_, chunk| {
                for fed in chunk {
                    fed.step_through(boundary);
                }
            });
            collect_signals(&feds, &mut supply, &mut lnp);
            let delta = update_weights(
                &self.home_shards,
                &supply,
                &lnp,
                &mut weights,
                &mut prev_mean_lnp,
            );
            signal_history.push(delta);
            cross_messages += 2 * s_count as u64;
            periods += 1;
            boundary += period;
        }
        // Epilogue: retries and completions past the last injected
        // window; each shard's own period chain winds down naturally.
        par_for_each_chunk_mut(outer, &mut feds, |_, chunk| {
            for fed in chunk {
                fed.drain();
            }
        });

        let mut outcomes = feds.into_iter().map(Federation::finish);
        let mut merged = outcomes.next().expect("at least one shard");
        for o in outcomes {
            merged.metrics.merge_from(&o.metrics);
            merged.total_busy += o.total_busy;
        }
        ShardedOutcome {
            outcome: merged,
            num_shards: s_count,
            periods,
            cross_messages,
            signal_history,
        }
    }
}

/// Builds shard `s`'s sub-scenario: the parent world restricted to nodes
/// `[lo, hi)` with ids remapped to `0..hi-lo`. The relation schema and
/// template set are kept whole (class ids stay globally meaningful);
/// mirrors, hardware, exec rows and capability lists are sliced.
fn slice_scenario(parent: &Scenario, s: usize, lo: usize, hi: usize) -> Scenario {
    let n_s = hi - lo;
    let in_range = |node: NodeId| node.index() >= lo && node.index() < hi;
    let remap = |node: NodeId| NodeId((node.index() - lo) as u32);
    let relations: Vec<Relation> = (0..parent.dataset.num_relations())
        .map(|i| {
            let r = parent.dataset.relation(RelationId(i as u32));
            Relation {
                id: r.id,
                size_bytes: r.size_bytes,
                attributes: r.attributes,
                mirrors: r
                    .mirrors
                    .iter()
                    .copied()
                    .filter(|&m| in_range(m))
                    .map(remap)
                    .collect(),
            }
        })
        .collect();
    let mut config = parent.config.clone();
    config.num_nodes = n_s;
    // Independent market-jitter stream per shard, derived from the parent
    // seed so the whole plan remains a function of one seed.
    let mut seed_rng = DetRng::seed_from_u64(parent.config.seed).derive(&format!("shard-{s}"));
    config.seed = seed_rng.next_u64();
    let capable: Vec<Vec<NodeId>> = parent
        .capable
        .iter()
        .map(|nodes| {
            nodes
                .iter()
                .copied()
                .filter(|&node| in_range(node))
                .map(remap)
                .collect()
        })
        .collect();
    Scenario {
        config,
        templates: parent.templates.clone(),
        dataset: Dataset::from_relations(n_s, relations),
        hardware: parent.hardware[lo..hi].to_vec(),
        exec_times_ms: parent.exec_times_ms[lo..hi].to_vec(),
        capable,
    }
}

/// Stride-credit pick over a class's home shards: every shard accrues
/// credit proportional to its weight share, the highest-credit shard
/// (lowest index on ties) takes the query and pays one unit. Long-run
/// traffic shares converge to the weight shares without any randomness,
/// so routing is a pure function of the boundary signals.
fn pick_home(homes: &[usize], weights: &[f64], credits: &mut [f64]) -> usize {
    let total: f64 = weights.iter().sum();
    for (c, w) in credits.iter_mut().zip(weights) {
        *c += w / total;
    }
    let mut best = 0;
    for i in 1..credits.len() {
        if credits[i] > credits[best] {
            best = i;
        }
    }
    credits[best] -= 1.0;
    homes[best]
}

/// Reads every shard's per-class boundary signals (remaining supply
/// units, mean ln price). Read-only on the markets.
fn collect_signals(feds: &[Federation<'_>], supply: &mut [Vec<u64>], lnp: &mut [Vec<f64>]) {
    for (s, fed) in feds.iter().enumerate() {
        fed.qant_signals_into(&mut supply[s], &mut lnp[s]);
    }
}

/// Recomputes the router weights — `(1 + supply) · e^(−ln p)`, i.e.
/// supply headroom deflated by price — and returns the mean over classes
/// of |Δ ln p| of the class's cross-shard mean log price since the last
/// boundary (the convergence signal).
fn update_weights(
    home_shards: &[Vec<usize>],
    supply: &[Vec<u64>],
    lnp: &[Vec<f64>],
    weights: &mut [Vec<f64>],
    prev_mean_lnp: &mut [f64],
) -> f64 {
    let k = home_shards.len();
    let mut delta_sum = 0.0;
    for kc in 0..k {
        let homes = &home_shards[kc];
        if homes.is_empty() {
            continue;
        }
        let mut mean = 0.0;
        for (i, &s) in homes.iter().enumerate() {
            if homes.len() > 1 {
                weights[kc][i] = (1.0 + supply[s][kc] as f64) * (-lnp[s][kc]).exp();
            }
            mean += lnp[s][kc];
        }
        mean /= homes.len() as f64;
        delta_sum += (mean - prev_mean_lnp[kc]).abs();
        prev_mean_lnp[kc] = mean;
    }
    delta_sum / k.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::experiments::two_class_trace;
    use crate::scenario::TwoClassParams;

    fn world(nodes: usize, seed: u64) -> Scenario {
        let mut cfg = SimConfig::small_test(seed);
        cfg.num_nodes = nodes;
        Scenario::two_class(cfg, TwoClassParams::default())
    }

    fn trace_for(scenario: &Scenario, seconds: u64) -> Trace {
        two_class_trace(scenario, 0.25, 0.6, seconds)
    }

    #[test]
    fn partitioner_keeps_every_class_reachable() {
        let mut cfg = SimConfig::small_test(3);
        cfg.num_nodes = 30;
        let parent = Scenario::table3(cfg);
        for s_count in [2, 3, 4, 7] {
            let plan = ShardPlan::build(&parent, s_count);
            assert_eq!(plan.shards().len(), s_count);
            // Slices tile [0, N) contiguously.
            assert_eq!(plan.shards()[0].lo, 0);
            assert_eq!(plan.shards().last().unwrap().hi, 30);
            for w in plan.shards().windows(2) {
                assert_eq!(w[0].hi, w[1].lo);
            }
            for k in 0..parent.templates.num_classes() {
                assert!(
                    !plan.home_shards(k).is_empty(),
                    "class {k} lost all capable nodes at S={s_count}"
                );
                // The shard-local capability lists partition the parent's.
                let total: usize = plan
                    .shards()
                    .iter()
                    .map(|sh| sh.scenario.capable[k].len())
                    .sum();
                assert_eq!(total, parent.capable[k].len());
                for sh in plan.shards() {
                    for node in &sh.scenario.capable[k] {
                        assert!(node.index() < sh.hi - sh.lo, "unremapped node id");
                    }
                }
            }
        }
    }

    #[test]
    fn single_shard_matches_flat_engine_exactly() {
        let parent = world(12, 11);
        let trace = trace_for(&parent, 30);
        let flat = Federation::new(&parent, MechanismKind::QaNt, &trace).run(&trace);
        let plan = ShardPlan::build(&parent, 1);
        let sharded = plan.run(&trace);
        assert_eq!(
            format!("{:?}", sharded.outcome),
            format!("{flat:?}"),
            "S=1 must be byte-identical to the flat engine"
        );
        assert_eq!(sharded.num_shards, 1);
        assert!(sharded.periods > 0);
    }

    #[test]
    fn sharded_output_is_stable_across_thread_budgets() {
        let parent = world(16, 23);
        let trace = trace_for(&parent, 30);
        let plan = ShardPlan::build(&parent, 4);
        let base = plan.run_with_budget(&trace, 1);
        for budget in [2, 3, 8] {
            let out = plan.run_with_budget(&trace, budget);
            assert_eq!(
                format!("{:?}", out.outcome),
                format!("{:?}", base.outcome),
                "budget={budget}"
            );
            assert_eq!(out.signal_history, base.signal_history);
            assert_eq!(out.periods, base.periods);
            assert_eq!(out.cross_messages, base.cross_messages);
        }
    }

    #[test]
    fn sharded_run_serves_the_whole_trace() {
        let parent = world(16, 5);
        let trace = trace_for(&parent, 30);
        let plan = ShardPlan::build(&parent, 4);
        let out = plan.run(&trace);
        let m = &out.outcome.metrics;
        assert_eq!(m.completed + m.unserved, trace.len() as u64);
        assert!(m.completed > 0, "nothing completed");
        assert_eq!(out.cross_messages, 2 * 4 * out.periods as u64);
        assert_eq!(out.signal_history.len(), out.periods);
    }

    #[test]
    fn shard_and_solver_layers_share_one_thread_budget() {
        let parent = world(16, 7);
        let plan = ShardPlan::build(&parent, 4);
        // 4 shards on 8 cores: 4 outer workers, 2 solver threads each —
        // not 4 shards × 8 solvers.
        assert_eq!(plan.thread_split(8), (4, 2));
        assert_eq!(plan.thread_split(1), (1, 1));
        assert_eq!(plan.thread_split(64), (4, 16));
        let single = ShardPlan::build(&parent, 1);
        // One shard inherits the whole budget for its solves, exactly the
        // flat engine's default.
        assert_eq!(single.thread_split(8), (1, 8));
    }

    #[test]
    fn stride_credit_tracks_weight_shares() {
        let homes = [0usize, 1, 2];
        let weights = [2.0, 1.0, 1.0];
        let mut credits = vec![0.0; 3];
        let mut counts = [0usize; 3];
        for _ in 0..400 {
            counts[pick_home(&homes, &weights, &mut credits)] += 1;
        }
        assert_eq!(counts, [200, 100, 100]);
    }

    #[test]
    fn convergence_period_reads_the_signal_history() {
        let parent = world(12, 9);
        let trace = trace_for(&parent, 60);
        let out = ShardPlan::build(&parent, 2).run(&trace);
        if let Some(p) = out.convergence_period(1e-2) {
            assert!(out.signal_history[p] < 1e-2);
            assert!(out.signal_history[..p].iter().all(|&d| d >= 1e-2));
        }
    }
}
