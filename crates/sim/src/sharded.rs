//! Sharded federation engine.
//!
//! Partitions one federation into `S` shards — contiguous node slices,
//! each with its own event queue, arrival cursor, market state and
//! flattened exec/availability matrices — and runs the intra-period hot
//! loop of every shard in parallel. Cross-shard coordination happens only
//! at period boundaries, as batched aggregate signals: each shard reports
//! per-class remaining supply and the log of its geometric-mean price, and
//! the router uses those aggregates to place the next window's arrivals.
//! This is the WALRAS-style multicommodity decomposition (see
//! `PAPERS.md`): sub-markets iterate locally and exchange only aggregated
//! price/excess-demand signals, never per-query traffic.
//!
//! ## Determinism contract
//!
//! * `S = 1` is byte-identical to the flat [`Federation::run`]: the single
//!   shard is the parent scenario itself (same seed, same market jitter
//!   stream), the window loop replays the flat event order exactly, and
//!   the boundary signal reads never perturb the market.
//! * Any `S` is byte-stable across thread budgets: shards share nothing
//!   within a period, the router is a pure function of the previous
//!   boundary's signals, and the merge runs in shard-index order.
//!
//! ## Thread budget
//!
//! The shard layer and the per-shard eq.-4 supply solves share one budget
//! via [`split_budget`]: `S` shards on a `B`-core budget step on
//! `min(B, S)` outer workers, each solving with `B / outer` inner threads
//! — never `S × B` oversubscription.

use crate::broker::BrokerTier;
use crate::config::BrokerConfig;
use crate::federation::{Federation, RunOutcome};
use crate::scenario::Scenario;
use qa_core::hier::mean_abs_delta_ln;
use qa_core::MechanismKind;
use qa_simnet::telemetry::Telemetry;
use qa_simnet::{par_for_each_chunk_mut, split_budget, DetRng, SimTime};
use qa_workload::dataset::{Dataset, Relation};
use qa_workload::ids::RelationId;
use qa_workload::{NodeId, QueryEvent, Trace};

/// One shard: a contiguous node slice `[lo, hi)` of the parent federation
/// re-packaged as a self-contained scenario with local node ids `0..hi-lo`.
pub struct ShardSpec {
    /// First parent node id owned by this shard.
    pub lo: usize,
    /// One past the last parent node id owned by this shard.
    pub hi: usize,
    /// The shard-local world (remapped dataset, hardware, exec matrix,
    /// capability lists).
    pub scenario: Scenario,
}

/// The static partition of one scenario into shards, plus the per-class
/// routing table.
pub struct ShardPlan {
    shards: Vec<ShardSpec>,
    /// `home_shards[k]` — shards holding at least one node capable of
    /// class `k` (possibly empty when the parent itself has none; such
    /// queries route to shard 0 and count as unservable there, exactly
    /// like the flat engine's `Impossible` outcome).
    home_shards: Vec<Vec<usize>>,
    num_classes: usize,
}

/// Per-run knobs of the sharded engine beyond the trace itself. The
/// default — ambient thread budget, no broker, no faults, telemetry off —
/// reproduces [`ShardPlan::run`] exactly.
#[derive(Clone)]
pub struct ShardRunOptions {
    /// Total thread budget shared by the shard layer and the per-shard
    /// supply solves (see [`ShardPlan::thread_split`]).
    pub budget: usize,
    /// Two-tier market: when set, a [`BrokerTier`] clears each window on
    /// the parent market and drives the router weights; when `None` the
    /// raw-signal weight-proportional router runs (the degenerate
    /// one-level case, byte-identical to PR 9).
    pub broker: Option<BrokerConfig>,
    /// Node crashes to schedule, in *parent* node ids (remapped onto the
    /// owning shard before the run starts).
    pub kills: Vec<(NodeId, SimTime)>,
    /// Node recoveries to schedule, in parent node ids.
    pub recoveries: Vec<(NodeId, SimTime)>,
    /// Event sink for the broker tier (`broker_bid`, `parent_cleared`,
    /// `demand_escalated`), stamped with sim-time at each boundary. The
    /// shard federations themselves stay silent — boundary-serial
    /// emission is what keeps broker traces byte-deterministic at any
    /// thread budget.
    pub telemetry: Telemetry,
}

impl Default for ShardRunOptions {
    fn default() -> Self {
        ShardRunOptions {
            budget: qa_simnet::thread_budget(),
            broker: None,
            kills: Vec::new(),
            recoveries: Vec::new(),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Result of a sharded run: the merged measurements plus the
/// decomposition's own diagnostics.
#[derive(Debug)]
pub struct ShardedOutcome {
    /// Merged per-shard measurements (shard-index merge order).
    pub outcome: RunOutcome,
    /// Shard count the run used.
    pub num_shards: usize,
    /// Simulated period boundaries stepped by the window loop.
    pub periods: usize,
    /// Cross-shard coordination messages: one report up and one broadcast
    /// down per shard per boundary. Kept separate from
    /// `outcome.metrics.messages` (the allocation-protocol count), so the
    /// `S = 1` output stays byte-identical to the flat engine.
    pub cross_messages: u64,
    /// Per-period mean |Δ ln p| over classes (price-signal movement);
    /// drives [`ShardedOutcome::convergence_period`].
    pub signal_history: Vec<f64>,
    /// Units of demand the parent market escalated across windows
    /// (broker mode only; 0 under the raw router).
    pub escalated_units: u64,
    /// Price-adjustment rounds the parent market spent (broker mode
    /// only; internal to the parent, not cross-tier messages).
    pub parent_rounds: u64,
}

impl ShardedOutcome {
    /// First period whose mean |Δ ln p| fell below `eps`, if any — the
    /// sweep's convergence yardstick.
    pub fn convergence_period(&self, eps: f64) -> Option<usize> {
        self.signal_history.iter().position(|&d| d < eps)
    }
}

impl ShardPlan {
    /// Partitions `parent` into `num_shards` contiguous node slices
    /// (clamped to the node count). Shard `s` owns
    /// `[s·N/S, (s+1)·N/S)`; its sub-scenario keeps the full template
    /// set and relation schema but filters mirrors, hardware, exec times
    /// and capability lists to the slice, remapping node ids to
    /// `0..n_s`. With one shard the parent scenario is used as-is (same
    /// seed), which is what makes `S = 1` byte-identical to the flat run;
    /// with more, each shard derives its own market-jitter seed.
    pub fn build(parent: &Scenario, num_shards: usize) -> ShardPlan {
        assert!(num_shards >= 1, "need at least one shard");
        let n = parent.config.num_nodes;
        let s_count = num_shards.min(n);
        let k = parent.templates.num_classes();
        let mut shards = Vec::with_capacity(s_count);
        if s_count == 1 {
            shards.push(ShardSpec {
                lo: 0,
                hi: n,
                scenario: parent.clone(),
            });
        } else {
            for s in 0..s_count {
                let lo = s * n / s_count;
                let hi = (s + 1) * n / s_count;
                shards.push(ShardSpec {
                    lo,
                    hi,
                    scenario: slice_scenario(parent, s, lo, hi),
                });
            }
        }
        let home_shards: Vec<Vec<usize>> = (0..k)
            .map(|kc| {
                shards
                    .iter()
                    .enumerate()
                    .filter(|(_, sh)| !sh.scenario.capable[kc].is_empty())
                    .map(|(s, _)| s)
                    .collect()
            })
            .collect();
        ShardPlan {
            shards,
            home_shards,
            num_classes: k,
        }
    }

    /// The shards, in node order.
    pub fn shards(&self) -> &[ShardSpec] {
        &self.shards
    }

    /// Shards holding at least one node capable of class `k`.
    pub fn home_shards(&self, k: usize) -> &[usize] {
        &self.home_shards[k]
    }

    /// How a total thread budget splits between the shard layer and each
    /// shard's intra-period solves: `(outer, inner)` with
    /// `outer × inner ≤ budget` (see [`split_budget`]).
    pub fn thread_split(&self, budget: usize) -> (usize, usize) {
        split_budget(budget, self.shards.len())
    }

    /// Runs the trace through the sharded engine on the ambient
    /// [`qa_simnet::thread_budget`].
    pub fn run(&self, trace: &Trace) -> ShardedOutcome {
        self.run_with_options(trace, &ShardRunOptions::default())
    }

    /// [`ShardPlan::run`] with an explicit total thread budget. The output
    /// is identical at any budget; the budget only decides how the shard
    /// stepping and the per-shard supply solves share the machine.
    pub fn run_with_budget(&self, trace: &Trace, budget: usize) -> ShardedOutcome {
        self.run_with_options(
            trace,
            &ShardRunOptions {
                budget,
                ..ShardRunOptions::default()
            },
        )
    }

    /// Maps a parent node id onto its owning shard and shard-local id.
    ///
    /// # Panics
    /// Panics when the id lies outside the plan's node range.
    fn locate(&self, node: NodeId) -> (usize, NodeId) {
        let idx = node.index();
        let s = self
            .shards
            .iter()
            .position(|sh| idx >= sh.lo && idx < sh.hi)
            .unwrap_or_else(|| panic!("node {idx} outside the shard plan"));
        (s, NodeId((idx - self.shards[s].lo) as u32))
    }

    /// [`ShardPlan::run`] with full per-run options: thread budget, the
    /// two-tier broker market, fault schedules, and broker telemetry.
    pub fn run_with_options(&self, trace: &Trace, options: &ShardRunOptions) -> ShardedOutcome {
        let s_count = self.shards.len();
        let k = self.num_classes;
        let (outer, inner) = self.thread_split(options.budget);
        let empty = Trace::from_events(Vec::new());
        let mut feds: Vec<Federation> = self
            .shards
            .iter()
            .map(|sh| {
                let mut f = Federation::new(&sh.scenario, MechanismKind::QaNt, &empty);
                f.set_intra_threads(inner);
                f.set_more_arrivals(true);
                f
            })
            .collect();
        // Fault schedules arrive in parent node ids; each lands on its
        // owning shard's federation (before `begin_run` arms the timers).
        for &(node, at) in &options.kills {
            let (s, local) = self.locate(node);
            feds[s].kill_node_at(local, at);
        }
        for &(node, at) in &options.recoveries {
            let (s, local) = self.locate(node);
            feds[s].recover_node_at(local, at);
        }
        for f in &mut feds {
            f.begin_run();
        }

        // Boundary signals: per-shard remaining supply and mean ln price
        // per class, the router's weights/credits over each class's home
        // shards, and the previous boundary's class-mean ln price for the
        // convergence series.
        let mut supply: Vec<Vec<u64>> = vec![vec![0; k]; s_count];
        let mut lnp: Vec<Vec<f64>> = vec![vec![0.0; k]; s_count];
        let mut weights: Vec<Vec<f64>> = (0..k)
            .map(|kc| vec![1.0; self.home_shards[kc].len()])
            .collect();
        let mut credits: Vec<Vec<f64>> = (0..k)
            .map(|kc| vec![0.0; self.home_shards[kc].len()])
            .collect();
        let mut prev_mean_lnp = vec![0.0; k];
        let mut broker = options
            .broker
            .as_ref()
            .map(|cfg| BrokerTier::new(k, cfg, options.telemetry.clone()));
        let mut window_demand = vec![0u64; k];
        collect_signals(&feds, &mut supply, &mut lnp);
        // Initial refresh: markets opened their first period during
        // construction, so weights and the Δ-baseline come from t = 0.
        match broker.as_mut() {
            None => {
                update_weights(
                    &self.home_shards,
                    &supply,
                    &lnp,
                    &mut weights,
                    &mut prev_mean_lnp,
                );
            }
            Some(tier) => {
                class_mean_lnp(&self.home_shards, &lnp, &mut prev_mean_lnp);
                options.telemetry.set_now_us(0);
                tier.clear_window(
                    &self.home_shards,
                    &supply,
                    &lnp,
                    &window_demand,
                    &mut weights,
                );
            }
        }

        let events = trace.events();
        let period = self.shards[0].scenario.config.period;
        let mut cursor = 0usize;
        let mut boundary = SimTime::ZERO + period;
        let mut periods = 0usize;
        let mut cross_messages = 0u64;
        let mut signal_history = Vec::new();
        let mut buffers: Vec<Vec<QueryEvent>> = vec![Vec::new(); s_count];
        while cursor < events.len() {
            // The window `(previous boundary, boundary]`: arrivals at
            // exactly the boundary precede the `PeriodStart` there, same
            // as the flat engine's arrival-cursor tie rule.
            let end = cursor + events[cursor..].partition_point(|e| e.at <= boundary);
            for e in &events[cursor..end] {
                let kc = e.class.index();
                window_demand[kc] += 1;
                let homes = &self.home_shards[kc];
                let s = match homes.len() {
                    // Unservable everywhere: park on shard 0, which
                    // reports it `Impossible` exactly like the flat run.
                    0 => 0,
                    1 => homes[0],
                    _ => pick_home(homes, &weights[kc], &mut credits[kc]),
                };
                let sh = &self.shards[s];
                let n_s = sh.hi - sh.lo;
                let o = e.origin.index();
                // Shard-local origin: own clients keep their identity;
                // remote clients fold onto a local stand-in (the link
                // model is distance-free, so only the fairness
                // bookkeeping sees the difference).
                let origin = if o >= sh.lo && o < sh.hi {
                    NodeId((o - sh.lo) as u32)
                } else {
                    NodeId((o % n_s.max(1)) as u32)
                };
                buffers[s].push(QueryEvent { origin, ..*e });
            }
            cursor = end;
            let last_window = cursor == events.len();
            for (s, fed) in feds.iter_mut().enumerate() {
                fed.push_arrivals(&buffers[s]);
                buffers[s].clear();
                if last_window {
                    fed.set_more_arrivals(false);
                }
            }
            par_for_each_chunk_mut(outer, &mut feds, |_, chunk| {
                for fed in chunk {
                    fed.step_through(boundary);
                }
            });
            collect_signals(&feds, &mut supply, &mut lnp);
            let delta = match broker.as_mut() {
                None => update_weights(
                    &self.home_shards,
                    &supply,
                    &lnp,
                    &mut weights,
                    &mut prev_mean_lnp,
                ),
                Some(tier) => {
                    // Same convergence yardstick as the raw router — the
                    // motion of the cross-shard mean ln-price — so the
                    // fig_hier columns are directly comparable; only the
                    // weight rule differs (parent clearing vs raw signal).
                    let mut means = prev_mean_lnp.clone();
                    class_mean_lnp(&self.home_shards, &lnp, &mut means);
                    let delta = mean_abs_delta_ln(&prev_mean_lnp, &means);
                    prev_mean_lnp.copy_from_slice(&means);
                    options.telemetry.set_now_us(boundary.as_micros());
                    tier.clear_window(
                        &self.home_shards,
                        &supply,
                        &lnp,
                        &window_demand,
                        &mut weights,
                    );
                    delta
                }
            };
            window_demand.iter_mut().for_each(|d| *d = 0);
            signal_history.push(delta);
            cross_messages += 2 * s_count as u64;
            periods += 1;
            boundary += period;
        }
        // Epilogue: retries and completions past the last injected
        // window; each shard's own period chain winds down naturally.
        par_for_each_chunk_mut(outer, &mut feds, |_, chunk| {
            for fed in chunk {
                fed.drain();
            }
        });

        let mut outcomes = feds.into_iter().map(Federation::finish);
        let mut merged = outcomes.next().expect("at least one shard");
        for o in outcomes {
            merged.metrics.merge_from(&o.metrics);
            merged.total_busy += o.total_busy;
        }
        let (escalated_units, parent_rounds) = broker
            .map(|t| (t.total_escalated, t.total_rounds))
            .unwrap_or((0, 0));
        ShardedOutcome {
            outcome: merged,
            num_shards: s_count,
            periods,
            cross_messages,
            signal_history,
            escalated_units,
            parent_rounds,
        }
    }
}

/// Builds shard `s`'s sub-scenario: the parent world restricted to nodes
/// `[lo, hi)` with ids remapped to `0..hi-lo`. The relation schema and
/// template set are kept whole (class ids stay globally meaningful);
/// mirrors, hardware, exec rows and capability lists are sliced.
fn slice_scenario(parent: &Scenario, s: usize, lo: usize, hi: usize) -> Scenario {
    let n_s = hi - lo;
    let in_range = |node: NodeId| node.index() >= lo && node.index() < hi;
    let remap = |node: NodeId| NodeId((node.index() - lo) as u32);
    let relations: Vec<Relation> = (0..parent.dataset.num_relations())
        .map(|i| {
            let r = parent.dataset.relation(RelationId(i as u32));
            Relation {
                id: r.id,
                size_bytes: r.size_bytes,
                attributes: r.attributes,
                mirrors: r
                    .mirrors
                    .iter()
                    .copied()
                    .filter(|&m| in_range(m))
                    .map(remap)
                    .collect(),
            }
        })
        .collect();
    let mut config = parent.config.clone();
    config.num_nodes = n_s;
    // Independent market-jitter stream per shard, derived from the parent
    // seed so the whole plan remains a function of one seed.
    let mut seed_rng = DetRng::seed_from_u64(parent.config.seed).derive(&format!("shard-{s}"));
    config.seed = seed_rng.next_u64();
    let capable: Vec<Vec<NodeId>> = parent
        .capable
        .iter()
        .map(|nodes| {
            nodes
                .iter()
                .copied()
                .filter(|&node| in_range(node))
                .map(remap)
                .collect()
        })
        .collect();
    Scenario {
        config,
        templates: parent.templates.clone(),
        dataset: Dataset::from_relations(n_s, relations),
        hardware: parent.hardware[lo..hi].to_vec(),
        exec_times_ms: parent.exec_times_ms[lo..hi].to_vec(),
        capable,
    }
}

/// Stride-credit pick over a class's home shards: every shard accrues
/// credit proportional to its weight share, the highest-credit shard
/// (lowest index on ties) takes the query and pays one unit. Long-run
/// traffic shares converge to the weight shares without any randomness,
/// so routing is a pure function of the boundary signals.
fn pick_home(homes: &[usize], weights: &[f64], credits: &mut [f64]) -> usize {
    let total: f64 = weights.iter().sum();
    if total > 0.0 && total.is_finite() {
        for (c, w) in credits.iter_mut().zip(weights) {
            *c += w / total;
        }
    } else {
        // Starvation guard: when every weight is zero (a class the parent
        // awarded no quota this window) the shares would be 0/0 = NaN,
        // and NaN credits never win another argmax — the class would be
        // silently parked on homes[0] forever. Accrue uniform shares
        // instead so queued arrivals still round-robin across homes.
        let share = 1.0 / credits.len() as f64;
        for c in credits.iter_mut() {
            *c += share;
        }
    }
    let mut best = 0;
    for i in 1..credits.len() {
        if credits[i] > credits[best] {
            best = i;
        }
    }
    credits[best] -= 1.0;
    homes[best]
}

/// Reads every shard's per-class boundary signals (remaining supply
/// units, mean ln price). Read-only on the markets.
fn collect_signals(feds: &[Federation<'_>], supply: &mut [Vec<u64>], lnp: &mut [Vec<f64>]) {
    for (s, fed) in feds.iter().enumerate() {
        fed.qant_signals_into(&mut supply[s], &mut lnp[s]);
    }
}

/// Cross-shard mean ln-price per class over the class's home shards,
/// written into `means`; classes with no home shard keep their previous
/// value (mirroring [`update_weights`]' skip). Same accumulation order as
/// the router path, so both modes measure convergence bit-identically.
fn class_mean_lnp(home_shards: &[Vec<usize>], lnp: &[Vec<f64>], means: &mut [f64]) {
    for (kc, homes) in home_shards.iter().enumerate() {
        if homes.is_empty() {
            continue;
        }
        let mut mean = 0.0;
        for &s in homes {
            mean += lnp[s][kc];
        }
        means[kc] = mean / homes.len() as f64;
    }
}

/// Recomputes the router weights — `(1 + supply) · e^(−ln p)`, i.e.
/// supply headroom deflated by price — and returns the mean over classes
/// of |Δ ln p| of the class's cross-shard mean log price since the last
/// boundary (the convergence signal).
fn update_weights(
    home_shards: &[Vec<usize>],
    supply: &[Vec<u64>],
    lnp: &[Vec<f64>],
    weights: &mut [Vec<f64>],
    prev_mean_lnp: &mut [f64],
) -> f64 {
    let k = home_shards.len();
    let mut delta_sum = 0.0;
    for kc in 0..k {
        let homes = &home_shards[kc];
        if homes.is_empty() {
            continue;
        }
        let mut mean = 0.0;
        for (i, &s) in homes.iter().enumerate() {
            if homes.len() > 1 {
                weights[kc][i] = (1.0 + supply[s][kc] as f64) * (-lnp[s][kc]).exp();
            }
            mean += lnp[s][kc];
        }
        mean /= homes.len() as f64;
        delta_sum += (mean - prev_mean_lnp[kc]).abs();
        prev_mean_lnp[kc] = mean;
    }
    delta_sum / k.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::experiments::two_class_trace;
    use crate::scenario::TwoClassParams;

    fn world(nodes: usize, seed: u64) -> Scenario {
        let mut cfg = SimConfig::small_test(seed);
        cfg.num_nodes = nodes;
        Scenario::two_class(cfg, TwoClassParams::default())
    }

    fn trace_for(scenario: &Scenario, seconds: u64) -> Trace {
        two_class_trace(scenario, 0.25, 0.6, seconds)
    }

    #[test]
    fn partitioner_keeps_every_class_reachable() {
        let mut cfg = SimConfig::small_test(3);
        cfg.num_nodes = 30;
        let parent = Scenario::table3(cfg);
        for s_count in [2, 3, 4, 7] {
            let plan = ShardPlan::build(&parent, s_count);
            assert_eq!(plan.shards().len(), s_count);
            // Slices tile [0, N) contiguously.
            assert_eq!(plan.shards()[0].lo, 0);
            assert_eq!(plan.shards().last().unwrap().hi, 30);
            for w in plan.shards().windows(2) {
                assert_eq!(w[0].hi, w[1].lo);
            }
            for k in 0..parent.templates.num_classes() {
                assert!(
                    !plan.home_shards(k).is_empty(),
                    "class {k} lost all capable nodes at S={s_count}"
                );
                // The shard-local capability lists partition the parent's.
                let total: usize = plan
                    .shards()
                    .iter()
                    .map(|sh| sh.scenario.capable[k].len())
                    .sum();
                assert_eq!(total, parent.capable[k].len());
                for sh in plan.shards() {
                    for node in &sh.scenario.capable[k] {
                        assert!(node.index() < sh.hi - sh.lo, "unremapped node id");
                    }
                }
            }
        }
    }

    #[test]
    fn single_shard_matches_flat_engine_exactly() {
        let parent = world(12, 11);
        let trace = trace_for(&parent, 30);
        let flat = Federation::new(&parent, MechanismKind::QaNt, &trace).run(&trace);
        let plan = ShardPlan::build(&parent, 1);
        let sharded = plan.run(&trace);
        assert_eq!(
            format!("{:?}", sharded.outcome),
            format!("{flat:?}"),
            "S=1 must be byte-identical to the flat engine"
        );
        assert_eq!(sharded.num_shards, 1);
        assert!(sharded.periods > 0);
    }

    #[test]
    fn sharded_output_is_stable_across_thread_budgets() {
        let parent = world(16, 23);
        let trace = trace_for(&parent, 30);
        let plan = ShardPlan::build(&parent, 4);
        let base = plan.run_with_budget(&trace, 1);
        for budget in [2, 3, 8] {
            let out = plan.run_with_budget(&trace, budget);
            assert_eq!(
                format!("{:?}", out.outcome),
                format!("{:?}", base.outcome),
                "budget={budget}"
            );
            assert_eq!(out.signal_history, base.signal_history);
            assert_eq!(out.periods, base.periods);
            assert_eq!(out.cross_messages, base.cross_messages);
        }
    }

    #[test]
    fn sharded_run_serves_the_whole_trace() {
        let parent = world(16, 5);
        let trace = trace_for(&parent, 30);
        let plan = ShardPlan::build(&parent, 4);
        let out = plan.run(&trace);
        let m = &out.outcome.metrics;
        assert_eq!(m.completed + m.unserved, trace.len() as u64);
        assert!(m.completed > 0, "nothing completed");
        assert_eq!(out.cross_messages, 2 * 4 * out.periods as u64);
        assert_eq!(out.signal_history.len(), out.periods);
    }

    #[test]
    fn shard_and_solver_layers_share_one_thread_budget() {
        let parent = world(16, 7);
        let plan = ShardPlan::build(&parent, 4);
        // 4 shards on 8 cores: 4 outer workers, 2 solver threads each —
        // not 4 shards × 8 solvers.
        assert_eq!(plan.thread_split(8), (4, 2));
        assert_eq!(plan.thread_split(1), (1, 1));
        assert_eq!(plan.thread_split(64), (4, 16));
        let single = ShardPlan::build(&parent, 1);
        // One shard inherits the whole budget for its solves, exactly the
        // flat engine's default.
        assert_eq!(single.thread_split(8), (1, 8));
    }

    #[test]
    fn stride_credit_tracks_weight_shares() {
        let homes = [0usize, 1, 2];
        let weights = [2.0, 1.0, 1.0];
        let mut credits = vec![0.0; 3];
        let mut counts = [0usize; 3];
        for _ in 0..400 {
            counts[pick_home(&homes, &weights, &mut credits)] += 1;
        }
        assert_eq!(counts, [200, 100, 100]);
    }

    #[test]
    fn zero_weight_window_still_routes_and_recovers() {
        // Starvation regression: a window where every weight is 0 (e.g. a
        // class the parent awarded no quota) must still route — uniformly
        // — and must not NaN-poison the credits for later windows.
        let homes = [0usize, 1];
        let mut credits = vec![0.0; 2];
        let mut counts = [0usize; 2];
        for _ in 0..10 {
            counts[pick_home(&homes, &[0.0, 0.0], &mut credits)] += 1;
        }
        assert_eq!(counts, [5, 5], "all-zero weights must round-robin");
        assert!(credits.iter().all(|c| c.is_finite()));
        // Weights recover next window: proportional routing resumes.
        let mut counts = [0usize; 2];
        for _ in 0..400 {
            counts[pick_home(&homes, &[3.0, 1.0], &mut credits)] += 1;
        }
        assert_eq!(counts, [300, 100], "credits must not stay poisoned");
    }

    #[test]
    fn extreme_weight_skew_starves_no_class() {
        // End-to-end starvation check at extreme skew: tiny-but-nonzero
        // weights (the legitimate floor is ~e^-27.6 from the price
        // ceiling) and exact zeros both keep every arrival routed.
        let homes = [0usize, 1, 2];
        let weights = [1e-320, 0.0, 1e308];
        let mut credits = vec![0.0; 3];
        let mut routed = 0usize;
        for _ in 0..1_000 {
            let s = pick_home(&homes, &weights, &mut credits);
            assert!(s < 3);
            routed += 1;
        }
        assert_eq!(routed, 1_000);
        assert!(credits.iter().all(|c| c.is_finite()));
    }

    #[test]
    fn broker_mode_output_is_stable_across_thread_budgets() {
        let parent = world(16, 23);
        let trace = trace_for(&parent, 30);
        let plan = ShardPlan::build(&parent, 4);
        for cfg in [BrokerConfig::qant(), BrokerConfig::walras()] {
            let opts = |budget: usize| ShardRunOptions {
                budget,
                broker: Some(cfg),
                ..ShardRunOptions::default()
            };
            let base = plan.run_with_options(&trace, &opts(1));
            for budget in [2, 3, 8] {
                let out = plan.run_with_options(&trace, &opts(budget));
                assert_eq!(
                    format!("{:?}", out.outcome),
                    format!("{:?}", base.outcome),
                    "broker {cfg:?} budget={budget}"
                );
                assert_eq!(out.signal_history, base.signal_history);
                assert_eq!(out.escalated_units, base.escalated_units);
                assert_eq!(out.parent_rounds, base.parent_rounds);
            }
        }
    }

    #[test]
    fn broker_mode_serves_the_whole_trace() {
        let parent = world(16, 5);
        let trace = trace_for(&parent, 30);
        let plan = ShardPlan::build(&parent, 4);
        let out = plan.run_with_options(
            &trace,
            &ShardRunOptions {
                broker: Some(BrokerConfig::qant()),
                ..ShardRunOptions::default()
            },
        );
        let m = &out.outcome.metrics;
        assert_eq!(m.completed + m.unserved, trace.len() as u64);
        assert!(m.completed > 0, "nothing completed under the broker");
        // Cross-tier traffic stays O(S): bids up, quotas/prices down.
        assert_eq!(out.cross_messages, 2 * 4 * out.periods as u64);
    }

    #[test]
    fn broker_off_options_match_the_plain_run_byte_for_byte() {
        let parent = world(16, 31);
        let trace = trace_for(&parent, 30);
        let plan = ShardPlan::build(&parent, 4);
        let plain = plan.run(&trace);
        let via_options = plan.run_with_options(&trace, &ShardRunOptions::default());
        assert_eq!(
            format!("{:?}", via_options.outcome),
            format!("{:?}", plain.outcome)
        );
        assert_eq!(via_options.signal_history, plain.signal_history);
        assert_eq!(via_options.escalated_units, 0);
        assert_eq!(via_options.parent_rounds, 0);
    }

    #[test]
    fn fault_schedules_land_on_the_owning_shard() {
        let parent = world(16, 13);
        let trace = trace_for(&parent, 30);
        let plan = ShardPlan::build(&parent, 4);
        // Kill one node in shard 2's range [8, 12) mid-run, recover later.
        let out = plan.run_with_options(
            &trace,
            &ShardRunOptions {
                kills: vec![(NodeId(9), SimTime::from_secs(5))],
                recoveries: vec![(NodeId(9), SimTime::from_secs(15))],
                ..ShardRunOptions::default()
            },
        );
        let m = &out.outcome.metrics;
        assert_eq!(
            m.completed + m.unserved,
            trace.len() as u64,
            "crash re-entry must conserve queries"
        );
        assert!(m.completed > 0);
    }

    #[test]
    fn convergence_period_reads_the_signal_history() {
        let parent = world(12, 9);
        let trace = trace_for(&parent, 60);
        let out = ShardPlan::build(&parent, 2).run(&trace);
        if let Some(p) = out.convergence_period(1e-2) {
            assert!(out.signal_history[p] < 1e-2);
            assert!(out.signal_history[..p].iter().all(|&d| d >= 1e-2));
        }
    }
}
