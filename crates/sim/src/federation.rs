//! The federation event loop.
//!
//! Drives one mechanism over one trace in one scenario. Arrivals trigger
//! the allocation protocol (messages are charged latency and counted, the
//! decision itself is instantaneous at the simulated timescale);
//! assignments occupy the chosen node's FIFO queue; completions free it;
//! period boundaries advance QA-NT's market (end period → price decay →
//! new supply vectors) and decay BNQRD's load reports.
//!
//! A query rejected by every QA-NT server is re-submitted at the start of
//! the next period (§2.2: "If all available servers reject a request for a
//! query, the respective client resubmits it in the next time period").
//!
//! ## Fault injection
//!
//! A [`FaultPlan`] (see [`qa_simnet::fault`]) makes links lossy: any
//! negotiation message may be dropped, links may jitter, and scheduled
//! outage windows can take a link down entirely. Crash schedules
//! ([`Federation::kill_node_at`] / [`Federation::recover_node_at`]) kill
//! and revive nodes mid-run. The negotiation is loss-tolerant: clients
//! work with whatever offers actually arrive, a lost assignment message
//! turns into a next-period resubmission, and the queries a crashed node
//! owned re-enter the next period's demand (§2.2 semantics) instead of
//! silently vanishing — each with a bounded retry budget so nothing
//! livelocks. All fault randomness flows from its own seeded stream, so
//! faulty runs are exactly as reproducible as clean ones, and the
//! disabled plan never draws from it at all (the fault-free path is
//! bit-identical to a build without fault injection).

use crate::metrics::RunMetrics;
use crate::node::NodeSoa;
use crate::scenario::Scenario;
use qa_core::messages::{OFFER_BYTES, REQUEST_BYTES, RESPONSE_BYTES};
use qa_core::{
    BnqrdCoordinator, MarkovAllocator, MechanismKind, RoundRobinState, TwoProbesChooser,
};
use qa_simnet::telemetry::{Telemetry, TelemetryEvent};
use qa_simnet::{par_for_each_chunk_mut, DetRng, EventQueue, FaultPlan, SimDuration, SimTime};
use qa_workload::{ClassId, NodeId, QueryEvent, Trace};

/// Cap on resubmissions per query (QA-NT rejections, fault losses, and
/// crash re-entries all count); beyond it the query counts as unserved.
/// High enough that in practice only a permanently-unservable query (all
/// capable nodes refusing forever) hits it — dropping queries early would
/// bias the mean-response comparison in QA-NT's favour.
const MAX_RETRIES: u32 = 20_000;

/// Salt separating the fault-injection RNG stream from the mechanism's.
const FAULT_SALT: u64 = 0xFA17_0001;

/// Below this many nodes a period's supply solves are cheaper than the
/// scoped-thread fork–join that would parallelize them, so the period
/// update stays inline.
const INTRA_PAR_MIN_NODES: usize = 64;

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Query `idx` (into the trace) asks for allocation. `retries` counts
    /// prior attempts.
    Arrival { idx: usize, retries: u32 },
    /// Query `idx` finished on `node`. `gen` is the assignment generation
    /// at scheduling time: a crash that orphans the query bumps the
    /// generation, turning this into a stale no-op.
    Completion { idx: usize, node: NodeId, gen: u32 },
    /// A period boundary.
    PeriodStart,
    /// Failure injection: node dies.
    Kill { node: NodeId },
    /// Failure injection: node comes back (empty queue, same hardware).
    Recover { node: NodeId },
}

enum MechState {
    /// QA-NT; `None` entries are non-participating nodes that always offer
    /// (the §4 partial-deployment case).
    QaNt {
        nodes: Vec<Option<qa_core::QantNode>>,
        /// Column-major availability mirror, `avail[class * N + node]`:
        /// how many more class-`k` requests node `n` will answer with an
        /// offer this period (`u64::MAX` for non-participating nodes).
        /// Kept in sync by [`sync_avail`] at period boundaries and
        /// decremented alongside `on_accept`, it lets the hot path
        /// resolve the common supply-available case with one contiguous
        /// array read instead of a market call.
        avail: Vec<u64>,
    },
    Greedy {
        /// Stale backlog snapshot (refreshed each period): clients cannot
        /// observe live queues, only periodically collected estimates —
        /// the "old information" effect of the paper's reference [10].
        snapshot: Vec<SimDuration>,
        snapshot_at: SimTime,
    },
    Random,
    RoundRobin {
        per_client: Vec<RoundRobinState>,
    },
    TwoProbes,
    Bnqrd {
        coordinator: BnqrdCoordinator,
    },
    Markov {
        allocator: MarkovAllocator,
    },
}

/// Result of one allocation attempt.
enum Allocation {
    /// Assigned to `node`; finishes at `finish`; assignment latency
    /// `delay`.
    Assigned {
        node: NodeId,
        finish: SimTime,
        delay: SimDuration,
    },
    /// Every server refused (QA-NT): resubmit next period.
    NoOffers,
    /// No capable node is alive: the query can never run.
    Impossible,
}

/// Outcome of one run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The mechanism that ran.
    pub mechanism: MechanismKind,
    /// All measurements.
    pub metrics: RunMetrics,
    /// Total busy time summed over nodes (utilization diagnostics).
    pub total_busy: SimDuration,
}

/// The simulator for one (scenario, mechanism) pair.
pub struct Federation<'a> {
    scenario: &'a Scenario,
    mechanism: MechanismKind,
    /// Dynamic per-node state, struct-of-arrays (see [`NodeSoa`]).
    nodes: NodeSoa,
    /// Flattened execution-time matrix, `exec[class * N + node]`
    /// (pre-converted from the scenario's `exec_times_ms`; incapable
    /// pairs hold a zero sentinel and are never read — `allocate` only
    /// looks up capable nodes). One row is exactly the slice the offer
    /// sweep walks.
    exec: Vec<SimDuration>,
    /// Worker budget for the per-period supply solves (see the
    /// `PeriodStart` arm). Defaults to [`qa_simnet::thread_budget`].
    intra_threads: usize,
    /// Owned arrival buffer. Trace arrivals are pre-sorted, so they never
    /// enter the event queue: a cursor drains them in order between
    /// dynamic events. The flat [`Federation::run`] copies the whole
    /// trace in at once; the sharded engine injects one period window at
    /// a time via `push_arrivals`.
    arrivals: Vec<QueryEvent>,
    /// Cursor into `arrivals`: the next not-yet-processed arrival.
    next_arrival: usize,
    /// The dynamic event queue (completions, period boundaries, retries,
    /// failure injections).
    queue: EventQueue<Event>,
    /// Stepped mode only: further `push_arrivals` calls may follow, so
    /// the period chain must stay alive across boundaries even when the
    /// currently-injected arrivals are exhausted. Always `false` in flat
    /// runs — there the full buffer answers the question exactly.
    more_arrivals: bool,
    state: MechState,
    rng: DetRng,
    metrics: RunMetrics,
    /// Per-class request counts of the running period (QA-NT demand caps).
    period_demand: Vec<u64>,
    /// Which node each query ended up on (for failure bookkeeping).
    owners: Vec<Option<NodeId>>,
    /// Whether each query completed.
    done: Vec<bool>,
    /// Allocation attempts already spent per query (crash re-entry resumes
    /// from here).
    attempts: Vec<u32>,
    /// Assignment generation per query; bumped when a crash orphans the
    /// query so the stale completion event is ignored.
    assign_gen: Vec<u32>,
    /// Failure injections to schedule.
    kills: Vec<(SimTime, NodeId)>,
    /// Recovery injections to schedule.
    recoveries: Vec<(SimTime, NodeId)>,
    /// Link-fault schedule (disabled by default).
    faults: FaultPlan,
    /// Dedicated stream for fault draws; never touched while `faults` is
    /// the disabled plan, keeping fault-free runs bit-identical.
    fault_rng: DetRng,
    /// Structured event sink; disabled by default (one branch per emit
    /// site). The run loop stamps sim-time on its shared clock, so trace
    /// timestamps are exactly as deterministic as the simulation itself.
    telemetry: Telemetry,
    /// Scratch buffers reused across `allocate` calls so the per-query hot
    /// path stops allocating once they reach steady-state capacity.
    scratch_capable: Vec<NodeId>,
    scratch_reachable: Vec<NodeId>,
    /// QA-NT refusal memo, one flag per class: set when a request saw a
    /// full refusal this period under stable conditions (no faults, no
    /// dead nodes, telemetry off). Prices are non-decreasing and supply
    /// non-increasing within a period, so a fully-refused class stays
    /// fully refused until the next period boundary — later requests
    /// short-circuit to `NoOffers` and only count a deferred rejection.
    /// Cleared at every period start and on any kill/recover event.
    refused_classes: Vec<bool>,
    /// Refusals owed to the market while the memo short-circuits, per
    /// class; flushed into every capable node's pricer (bit-identical
    /// stepwise price rises) before the period-end price update.
    deferred_rejections: Vec<u64>,
    /// Pure-market rejection deferral (set once per run): with no §5.1
    /// threshold, telemetry off and no fault schedule, a within-period
    /// price rise is unobservable — `on_request` answers from supply
    /// alone — so per-poll rejections can be counted here and replayed
    /// stepwise at the period boundary instead of calling into the
    /// market per poll. Same multiplication sequence, same final prices.
    defer_rejections: bool,
    /// Deferred per-poll rejection counts, `class-major [class × node]`,
    /// drained by `flush_deferred_rejections`.
    deferred_node_rejections: Vec<u64>,
    /// Per-class flag: some entry of the class' `deferred_node_rejections`
    /// row is non-zero. Lets the flush skip untouched rows without
    /// scanning the (classes × nodes) matrix every period.
    deferred_dirty: Vec<bool>,
}

impl<'a> Federation<'a> {
    /// Builds a run. The trace is needed at build time for sizing and, for
    /// the Markov allocator, its static per-class rates.
    pub fn new(scenario: &'a Scenario, mechanism: MechanismKind, trace: &Trace) -> Federation<'a> {
        Federation::with_telemetry(scenario, mechanism, trace, Telemetry::disabled())
    }

    /// [`Federation::new`] with a telemetry handle. Must be used (rather
    /// than installing a sink later) to capture the market's t=0 supply
    /// solves: QA-NT nodes begin their first period during construction.
    pub fn with_telemetry(
        scenario: &'a Scenario,
        mechanism: MechanismKind,
        trace: &Trace,
        telemetry: Telemetry,
    ) -> Federation<'a> {
        let cfg = &scenario.config;
        let nodes = NodeSoa::new(cfg.num_nodes);
        let k = scenario.templates.num_classes();
        let mut exec = vec![SimDuration::ZERO; k * cfg.num_nodes];
        for (n, row) in scenario.exec_times_ms.iter().enumerate() {
            for (c, t) in row.iter().enumerate() {
                if let Some(ms) = t {
                    exec[c * cfg.num_nodes + n] = SimDuration::from_millis_f64(*ms);
                }
            }
        }
        let state = match mechanism {
            MechanismKind::QaNt => {
                let mut price_rng = DetRng::seed_from_u64(cfg.seed).derive("qant-prices");
                MechState::QaNt {
                    nodes: (0..cfg.num_nodes)
                        .map(|i| {
                            let mut n = qa_core::QantNode::with_jitter(k, cfg.qant, &mut price_rng);
                            n.set_telemetry(telemetry.with_label(i as u32));
                            n.begin_period(&scenario.exec_times_ms[i], None);
                            Some(n)
                        })
                        .collect(),
                    avail: vec![0; k * cfg.num_nodes],
                }
            }
            MechanismKind::Greedy => MechState::Greedy {
                snapshot: vec![SimDuration::ZERO; cfg.num_nodes],
                snapshot_at: SimTime::ZERO,
            },
            MechanismKind::Random => MechState::Random,
            MechanismKind::RoundRobin => MechState::RoundRobin {
                per_client: (0..cfg.num_nodes).map(|_| RoundRobinState::new()).collect(),
            },
            MechanismKind::TwoProbes => MechState::TwoProbes,
            MechanismKind::Bnqrd => MechState::Bnqrd {
                coordinator: BnqrdCoordinator::new(cfg.num_nodes),
            },
            MechanismKind::Markov => {
                let horizon_s = trace.horizon().as_secs_f64().max(1e-9);
                let rates: Vec<f64> = (0..k)
                    .map(|c| trace.count_class(ClassId(c as u32)) as f64 / horizon_s)
                    .collect();
                MechState::Markov {
                    allocator: MarkovAllocator::build(&rates, &scenario.exec_times_ms, 100),
                }
            }
        };
        Federation {
            scenario,
            mechanism,
            nodes,
            exec,
            intra_threads: qa_simnet::thread_budget(),
            arrivals: Vec::new(),
            next_arrival: 0,
            queue: EventQueue::new(),
            more_arrivals: false,
            state,
            rng: DetRng::seed_from_u64(cfg.seed ^ mechanism_salt(mechanism)),
            metrics: RunMetrics::new(cfg.period, k),
            period_demand: vec![0; k],
            owners: vec![None; trace.len()],
            done: vec![false; trace.len()],
            attempts: vec![0; trace.len()],
            assign_gen: vec![0; trace.len()],
            kills: Vec::new(),
            recoveries: Vec::new(),
            faults: FaultPlan::none(),
            fault_rng: DetRng::seed_from_u64(cfg.seed ^ mechanism_salt(mechanism) ^ FAULT_SALT),
            telemetry,
            scratch_capable: Vec::new(),
            scratch_reachable: Vec::new(),
            refused_classes: vec![false; k],
            deferred_rejections: vec![0; k],
            defer_rejections: false,
            deferred_node_rejections: vec![0; k * cfg.num_nodes],
            deferred_dirty: vec![false; k],
        }
    }

    /// Schedules a node failure at `at` (failure-injection experiments).
    /// The node's queued work is lost; every query it owned re-enters the
    /// next period's demand (§2.2) with its retry budget decremented.
    pub fn kill_node_at(&mut self, node: NodeId, at: SimTime) {
        self.kills.push((at, node));
    }

    /// Schedules a node recovery at `at`: the node rejoins with an empty
    /// queue and resumes offering (its market re-arms at the next period
    /// boundary).
    pub fn recover_node_at(&mut self, node: NodeId, at: SimTime) {
        self.recoveries.push((at, node));
    }

    /// Installs a link-fault schedule. The default is [`FaultPlan::none`],
    /// which is a strict zero-cost path: no fault RNG draw is ever made
    /// and the run is bit-identical to one without fault injection.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Reseeds the fault stream independently of the scenario seed, so the
    /// same world can be replayed under different loss realizations.
    pub fn set_fault_seed(&mut self, seed: u64) {
        self.fault_rng = DetRng::seed_from_u64(seed ^ FAULT_SALT);
    }

    /// Converts a QA-NT run into a *partial deployment*: only nodes for
    /// which `participates` returns `true` run the market; the rest always
    /// offer (§4: QA-NT "can even work without problems in cases where
    /// only a subset of the nodes is using QA-NT").
    ///
    /// # Panics
    /// Panics when the mechanism is not QA-NT.
    pub fn restrict_market_to<F: Fn(NodeId) -> bool>(&mut self, participates: F) {
        match &mut self.state {
            MechState::QaNt { nodes, avail } => {
                for (i, slot) in nodes.iter_mut().enumerate() {
                    if !participates(NodeId(i as u32)) {
                        *slot = None;
                    }
                }
                sync_avail(nodes, avail);
            }
            _ => panic!("partial deployment applies to QA-NT only"),
        }
    }

    /// Overrides the worker budget for the per-period supply solves
    /// (default: [`qa_simnet::thread_budget`]). The output is identical at
    /// any budget — the solves are independent per node — so this only
    /// matters for oversubscription control and determinism tests.
    pub fn set_intra_threads(&mut self, threads: usize) {
        assert!(threads >= 1, "thread budget must be at least 1");
        self.intra_threads = threads;
    }

    /// Runs the trace to completion and returns the measurements.
    pub fn run(mut self, trace: &Trace) -> RunOutcome {
        self.push_arrivals(trace.events());
        self.begin_run();
        while self.process_next() {}
        self.finish()
    }

    /// Appends arrivals to the run's input buffer (time-ordered within
    /// and across calls) and grows the per-query bookkeeping to match.
    /// The flat [`Federation::run`] injects the whole trace at once; the
    /// sharded engine injects one period window at a time.
    ///
    /// # Panics
    /// Panics when the new arrivals start before already-buffered ones.
    pub(crate) fn push_arrivals(&mut self, events: &[QueryEvent]) {
        if let (Some(last), Some(first)) = (self.arrivals.last(), events.first()) {
            assert!(
                last.at <= first.at,
                "arrivals must be injected in time order"
            );
        }
        debug_assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        self.arrivals.extend_from_slice(events);
        let n = self.arrivals.len();
        self.owners.resize(n, None);
        self.done.resize(n, false);
        self.attempts.resize(n, 0);
        self.assign_gen.resize(n, 0);
    }

    /// Stepped mode: marks whether further [`Federation::push_arrivals`]
    /// calls may follow. While set, the period chain stays alive across
    /// boundaries even when the currently-injected arrivals are
    /// exhausted — exactly the condition the flat run reads off its full
    /// arrival buffer.
    pub(crate) fn set_more_arrivals(&mut self, more: bool) {
        self.more_arrivals = more;
    }

    /// Starts a run: fixes the rejection-deferral mode, seeds the event
    /// queue with the failure schedule and the first period boundary.
    pub(crate) fn begin_run(&mut self) {
        let cfg_period = self.scenario.config.period;
        // Fixed for the whole run: fault schedules and kill/recover
        // events are installed before `run`, and the telemetry handle at
        // construction.
        self.defer_rejections = self.kills.is_empty()
            && self.recoveries.is_empty()
            && self.faults.is_none()
            && self.scenario.config.qant.price_threshold.is_none()
            && !self.telemetry.is_enabled();
        if let MechState::QaNt { nodes, avail } = &mut self.state {
            sync_avail(nodes, avail);
        }
        for &(at, node) in &self.kills {
            self.queue.schedule(at, Event::Kill { node });
        }
        for &(at, node) in &self.recoveries {
            self.queue.schedule(at, Event::Recover { node });
        }
        // Periods matter for QA-NT (market), BNQRD (report decay) and
        // Greedy (stale load snapshots).
        if matches!(
            self.state,
            MechState::QaNt { .. } | MechState::Bnqrd { .. } | MechState::Greedy { .. }
        ) {
            self.queue
                .schedule(SimTime::ZERO + cfg_period, Event::PeriodStart);
        }
    }

    /// Earliest pending event time — the arrival cursor head or the queue
    /// head, whichever the run loop would take next.
    pub(crate) fn peek_next_time(&self) -> Option<SimTime> {
        let arrival = self.arrivals.get(self.next_arrival).map(|e| e.at);
        match (arrival, self.queue.peek_time()) {
            (Some(a), Some(q)) => Some(a.min(q)),
            (a, q) => a.or(q),
        }
    }

    /// Processes every pending event with `time <= until`, in exactly the
    /// order the flat run processes them (the arrival cursor wins ties,
    /// then queue key order). The caller must have injected all arrivals
    /// belonging to the window first; `until` is normally a period
    /// boundary, so the `PeriodStart` at exactly `until` is processed
    /// before returning.
    pub(crate) fn step_through(&mut self, until: SimTime) {
        while self.peek_next_time().is_some_and(|t| t <= until) {
            self.process_next();
        }
    }

    /// Processes everything that is left (stepped mode epilogue: retries
    /// and completions past the last injected window).
    pub(crate) fn drain(&mut self) {
        while self.process_next() {}
    }

    /// Ends the run: pays the final partial period's deferred refusals
    /// and returns the measurements.
    pub(crate) fn finish(mut self) -> RunOutcome {
        // The final (partial) period never reaches another boundary; pay
        // its deferred refusals so post-run market state matches an eager
        // run.
        self.flush_deferred_rejections();
        RunOutcome {
            mechanism: self.mechanism,
            metrics: self.metrics,
            total_busy: self.nodes.total_busy(),
        }
    }

    /// Processes the single next event — the arrival cursor head or the
    /// queue head. Returns `false` when nothing is pending.
    ///
    /// Because arrivals used to be scheduled first (lowest sequence
    /// numbers), an arrival always preceded any same-time dynamic
    /// event — the cursor rule `arrival.at <= peek_time` reproduces
    /// that order exactly.
    fn process_next(&mut self) -> bool {
        let cfg_period = self.scenario.config.period;
        if self.next_arrival < self.arrivals.len()
            && self
                .queue
                .peek_time()
                .is_none_or(|t| self.arrivals[self.next_arrival].at <= t)
        {
            let idx = self.next_arrival;
            self.next_arrival += 1;
            let now = self.arrivals[idx].at;
            self.telemetry.set_now_us(now.as_micros());
            self.handle_arrival(now, idx, 0, cfg_period);
            return true;
        }
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        let now = ev.time;
        self.telemetry.set_now_us(now.as_micros());
        match ev.payload {
            Event::Arrival { idx, retries } => {
                self.handle_arrival(now, idx, retries, cfg_period);
            }
            Event::Completion { idx, node, gen } => {
                // Stale completion: the query was orphaned by a crash
                // (generation bumped) or already finished elsewhere.
                if self.done[idx] || gen != self.assign_gen[idx] {
                    return true;
                }
                self.nodes.complete(node.index());
                self.done[idx] = true;
                let q = self.arrivals[idx];
                self.metrics
                    .record_completion_from(q.class, q.origin, q.at, now);
                self.telemetry.emit(|| TelemetryEvent::QueryCompleted {
                    query: idx as u64,
                    class: q.class.0,
                    node: node.0,
                    response_ms: now.saturating_since(q.at).as_millis_f64(),
                });
                if let MechState::Bnqrd { coordinator } = &mut self.state {
                    let ref_cost = self
                        .scenario
                        .templates
                        .get(q.class)
                        .base_cost
                        .as_millis_f64();
                    coordinator.report_completion(node, ref_cost);
                }
            }
            Event::PeriodStart => {
                self.telemetry.emit(|| TelemetryEvent::PeriodStarted {
                    index: now.period_index(cfg_period),
                });
                let _span = self.telemetry.span("federation.period_update");
                // Deferred refusals belong to the closing period:
                // charge them before its price update, then re-arm
                // the memo for the fresh supply.
                self.flush_deferred_rejections();
                self.refused_classes.fill(false);
                match &mut self.state {
                    MechState::QaNt { nodes, avail } => {
                        // Sellers have no reason to reserve more supply
                        // for a class than anyone asked for last period
                        // (with headroom for growth): the caps steer
                        // leftover capacity to classes with live demand.
                        let caps = qa_economics::QuantityVector::from_counts(
                            self.period_demand
                                .iter()
                                .map(|&d| d.saturating_mul(2).max(2))
                                .collect(),
                        );
                        let period_ms = cfg_period.as_millis_f64();
                        // Work-conserving budget. In the §5.1 threshold
                        // mode it is floored at T/2 so a node that
                        // queued work while the bypass was active does
                        // not reject everything while draining; in pure
                        // market mode backlog never exceeds ~2T and the
                        // floor must not oversell. Dead nodes get no
                        // budget: they end their period and go quiet.
                        let floor = if self.scenario.config.qant.price_threshold.is_some() {
                            0.5 * period_ms
                        } else {
                            0.0
                        };
                        let soa = &self.nodes;
                        let budgets: Vec<Option<f64>> = (0..nodes.len())
                            .map(|i| {
                                soa.alive(i).then(|| {
                                    let backlog = soa.backlog(i, now).as_millis_f64();
                                    (2.0 * period_ms - backlog).clamp(floor, 2.0 * period_ms)
                                })
                            })
                            .collect();
                        // The eq.-4 solves are independent per node, so
                        // they fan over scoped workers; results are
                        // identical at any thread count — the split
                        // only decides which worker solves which node.
                        // Telemetry emission order is part of the
                        // byte-deterministic contract, so the parallel
                        // path only engages when tracing is off.
                        let threads =
                            if self.telemetry.is_enabled() || nodes.len() < INTRA_PAR_MIN_NODES {
                                1
                            } else {
                                self.intra_threads
                            };
                        let exec_times = &self.scenario.exec_times_ms;
                        par_for_each_chunk_mut(threads, nodes, |offset, chunk| {
                            for (j, slot) in chunk.iter_mut().enumerate() {
                                let Some(n) = slot else { continue };
                                n.end_period();
                                if let Some(budget) = budgets[offset + j] {
                                    n.begin_period_with_budget(
                                        &exec_times[offset + j],
                                        Some(&caps),
                                        budget,
                                    );
                                }
                            }
                        });
                        sync_avail(nodes, avail);
                        self.period_demand.iter_mut().for_each(|d| *d = 0);
                    }
                    MechState::Bnqrd { coordinator } => coordinator.tick(0.9),
                    MechState::Greedy {
                        snapshot,
                        snapshot_at,
                    } => {
                        for (i, s) in snapshot.iter_mut().enumerate() {
                            *s = self.nodes.backlog(i, now);
                        }
                        *snapshot_at = now;
                    }
                    _ => {}
                }
                if !self.queue.is_empty()
                    || self.next_arrival < self.arrivals.len()
                    || self.more_arrivals
                {
                    self.queue.schedule(now + cfg_period, Event::PeriodStart);
                }
            }
            Event::Kill { node } => {
                // Membership changed: the refusal memo's "conditions
                // cannot improve" argument no longer holds.
                self.refused_classes.fill(false);
                self.nodes.kill(node.index());
                self.telemetry
                    .emit(|| TelemetryEvent::NodeCrashed { node: node.0 });
                // §2.2 semantics for crash victims: whatever the dead
                // node owned re-enters the next period's demand vector
                // as a fresh arrival, rather than silently vanishing.
                let orphans: Vec<usize> = self
                    .owners
                    .iter()
                    .enumerate()
                    .filter(|(q, owner)| **owner == Some(node) && !self.done[*q])
                    .map(|(q, _)| q)
                    .collect();
                for q in orphans {
                    self.assign_gen[q] = self.assign_gen[q].wrapping_add(1);
                    self.owners[q] = None;
                    let tried = self.attempts[q];
                    if tried >= MAX_RETRIES {
                        self.metrics.unserved += 1;
                        self.telemetry.emit(|| TelemetryEvent::QueryUnserved {
                            query: q as u64,
                            class: self.arrivals[q].class.0,
                            retries: tried,
                        });
                    } else {
                        self.metrics.retries += 1;
                        let next = SimTime::from_micros(
                            (now.period_index(cfg_period) + 1) * cfg_period.as_micros(),
                        ) + SimDuration::from_micros(1);
                        self.queue.schedule(
                            next,
                            Event::Arrival {
                                idx: q,
                                retries: tried + 1,
                            },
                        );
                    }
                }
            }
            Event::Recover { node } => {
                self.refused_classes.fill(false);
                self.nodes.revive(node.index(), now);
                self.telemetry
                    .emit(|| TelemetryEvent::NodeRecovered { node: node.0 });
            }
        }
        true
    }

    /// Processes the arrival (or resubmission) of query `idx` at `now`:
    /// one allocation attempt, then completion scheduling, next-period
    /// resubmission, or an unserved verdict.
    fn handle_arrival(&mut self, now: SimTime, idx: usize, retries: u32, cfg_period: SimDuration) {
        self.attempts[idx] = retries;
        let q = self.arrivals[idx];
        match self.allocate(now, q.class, q.origin, idx) {
            Allocation::Assigned {
                node,
                finish,
                delay,
            } => {
                self.metrics.assign_latency.add(delay.as_millis_f64());
                self.telemetry.emit(|| TelemetryEvent::QueryAssigned {
                    query: idx as u64,
                    class: q.class.0,
                    node: node.0,
                    retries,
                });
                let gen = self.assign_gen[idx];
                self.queue
                    .schedule(finish, Event::Completion { idx, node, gen });
            }
            Allocation::NoOffers => {
                if retries >= MAX_RETRIES {
                    self.metrics.unserved += 1;
                    self.telemetry.emit(|| TelemetryEvent::QueryUnserved {
                        query: idx as u64,
                        class: q.class.0,
                        retries,
                    });
                } else {
                    self.metrics.retries += 1;
                    let next = SimTime::from_micros(
                        (now.period_index(cfg_period) + 1) * cfg_period.as_micros(),
                    ) + SimDuration::from_micros(1);
                    self.queue.schedule(
                        next,
                        Event::Arrival {
                            idx,
                            retries: retries + 1,
                        },
                    );
                }
            }
            Allocation::Impossible => {
                self.metrics.unserved += 1;
                self.telemetry.emit(|| TelemetryEvent::QueryUnserved {
                    query: idx as u64,
                    class: q.class.0,
                    retries,
                });
            }
        }
    }

    /// Pays the refusals the memo short-circuited into every capable
    /// node's pricer. Must run before any period-end price update (the
    /// deferred rises belong to the closing period) and after the run
    /// loop exits (so post-run market state matches an eager run).
    fn flush_deferred_rejections(&mut self) {
        if let MechState::QaNt { nodes, .. } = &mut self.state {
            let n_total = self.nodes.len();
            for (k, class_d) in self.deferred_rejections.iter_mut().enumerate() {
                let dirty = std::mem::replace(&mut self.deferred_dirty[k], false);
                if *class_d == 0 && !dirty {
                    continue;
                }
                let row = &mut self.deferred_node_rejections[k * n_total..(k + 1) * n_total];
                // Fold the full-refusal memo's class-level count into the
                // per-node row: every capable node refused each of those
                // requests. The raises are identical ×(1+λ) steps, so
                // replay order across the two ledgers is immaterial —
                // only the per-(node, class) totals reach the price.
                if *class_d > 0 {
                    for &n in &self.scenario.capable[k] {
                        row[n.index()] += *class_d;
                    }
                    *class_d = 0;
                }
                qa_core::QantNode::apply_rejections_batch(nodes, ClassId(k as u32), row);
                row.fill(0);
            }
        }
    }

    /// Per-class market signals for the sharded router, written into
    /// `supply[k]` / `ln_price[k]` (both sized to the class count):
    /// remaining supply units summed over this federation's capable
    /// nodes, and the mean log price over the same nodes (the log of the
    /// geometric-mean price — the aggregate each shard reports upward in
    /// the WALRAS-style decomposition). Reads only: calling this never
    /// perturbs the market.
    ///
    /// # Panics
    /// Panics for non-QA-NT mechanisms.
    pub(crate) fn qant_signals_into(&self, supply: &mut [u64], ln_price: &mut [f64]) {
        let MechState::QaNt { nodes, avail } = &self.state else {
            panic!("market signals apply to QA-NT only");
        };
        let n_total = self.nodes.len();
        let k_count = supply.len();
        for (k, s) in supply.iter_mut().enumerate() {
            let mut units: u64 = 0;
            for &node in &self.scenario.capable[k] {
                let a = avail[k * n_total + node.index()];
                if a != u64::MAX {
                    units = units.saturating_add(a);
                }
            }
            *s = units;
        }
        let mut sums = vec![0.0; k_count];
        let mut counts = vec![0u32; k_count];
        let mut node_lnp = vec![0.0; k_count];
        for (i, slot) in nodes.iter().enumerate() {
            let Some(market) = slot else { continue };
            market.ln_prices_into(&mut node_lnp);
            for (k, &lnp) in node_lnp.iter().enumerate() {
                if self.scenario.exec_times_ms[i][k].is_some() {
                    sums[k] += lnp;
                    counts[k] += 1;
                }
            }
        }
        for (k, lnp) in ln_price.iter_mut().enumerate() {
            *lnp = if counts[k] > 0 {
                sums[k] / counts[k] as f64
            } else {
                0.0
            };
        }
    }

    /// Runs the allocation protocol for one query at `now`.
    fn allocate(&mut self, now: SimTime, class: ClassId, origin: NodeId, idx: usize) -> Allocation {
        let _span = self.telemetry.span("federation.allocate");
        // Refusal memo hit: this class was fully refused earlier this
        // period under conditions that cannot improve before the next
        // boundary. Charge the same messages and defer the per-node price
        // rises (see `flush_deferred_rejections`).
        if self.refused_classes[class.index()] {
            self.period_demand[class.index()] += 1;
            self.deferred_rejections[class.index()] += 1;
            self.metrics.messages += self.scenario.capable[class.index()].len() as u64;
            return Allocation::NoOffers;
        }
        let scenario = self.scenario;
        let link = scenario.config.link;
        // Fault injection: the polling mechanisms (QA-NT, Greedy,
        // two-probes) exchange a request/reply pair with every candidate;
        // either direction can be lost, removing that candidate from this
        // attempt. The client collects whatever actually arrives — it
        // never blocks on the full candidate set. `faults_on` gates every
        // draw so the disabled plan stays bit-identical to no-fault runs.
        let faults_on = !self.faults.is_none();
        // Common case — no link faults, no dead nodes: the scenario's
        // static capable list *is* both the capable and the reachable set,
        // so neither scratch copy is needed.
        let (capable, reachable): (&[NodeId], &[NodeId]) = if !faults_on && self.nodes.all_alive() {
            let c = scenario.capable[class.index()].as_slice();
            if c.is_empty() {
                return Allocation::Impossible;
            }
            (c, c)
        } else {
            self.scratch_capable.clear();
            let alive = self.nodes.alive_slice();
            self.scratch_capable.extend(
                scenario.capable[class.index()]
                    .iter()
                    .copied()
                    .filter(|n| alive[n.index()]),
            );
            if self.scratch_capable.is_empty() {
                return Allocation::Impossible;
            }
            let polls = matches!(
                self.state,
                MechState::QaNt { .. } | MechState::Greedy { .. } | MechState::TwoProbes
            );
            self.scratch_reachable.clear();
            if faults_on && polls {
                for &n in &self.scratch_capable {
                    let request_ok = self.faults.delivers(n.index(), now, &mut self.fault_rng);
                    let reply_ok = self.faults.delivers(n.index(), now, &mut self.fault_rng);
                    if request_ok && reply_ok {
                        self.scratch_reachable.push(n);
                    } else {
                        self.metrics.lost_messages += 1;
                        self.telemetry.emit(|| TelemetryEvent::MessageDropped {
                            node: n.0,
                            context: "poll".to_string(),
                        });
                    }
                }
            } else {
                let capable = &self.scratch_capable;
                self.scratch_reachable.extend_from_slice(capable);
            }
            (&self.scratch_capable, &self.scratch_reachable)
        };

        let n_total = self.nodes.len();
        let exec_row = &self.exec[class.index() * n_total..(class.index() + 1) * n_total];
        let exec_of = move |n: NodeId| exec_row[n.index()];

        let rtt = link.transfer_time(REQUEST_BYTES)
            + link.transfer_time(OFFER_BYTES)
            + link.transfer_time(RESPONSE_BYTES);
        let one_way = link.transfer_time(REQUEST_BYTES);

        let (choice, mut delay) = match &mut self.state {
            MechState::QaNt { nodes, avail } => {
                self.period_demand[class.index()] += 1;
                let avail_row = &mut avail[class.index() * n_total..(class.index() + 1) * n_total];
                let soa = &self.nodes;
                // Single fused sweep: collect offers and pick the winner
                // in one pass. The winner is the first minimum under
                // `(estimated_completion, server)` — exactly what
                // `qa_core::client::choose_best_offer` computes over a
                // materialized offer list, without building the list.
                let mut offers: u64 = 0;
                let mut best: Option<(SimDuration, NodeId)> = None;
                // Fast path inside either loop: the availability mirror
                // says the node still has supply, so `on_request` would
                // return `true` without touching market state or
                // telemetry — skip the call. Non-participating nodes sit
                // at `u64::MAX` and always take this path (§4).
                if self.defer_rejections {
                    // Pure-market deferral: an exhausted node's refusal
                    // is just a counter bump (the price rise is replayed
                    // at the boundary), so the sweep never touches market
                    // state — it reads three flat rows.
                    let deferred = &mut self.deferred_node_rejections
                        [class.index() * n_total..(class.index() + 1) * n_total];
                    let backlog = soa.backlog_until_slice();
                    if reachable.len() == n_total {
                        // Every node is a candidate: sweep the full rows
                        // in lockstep (capable lists are ascending, so a
                        // full-length list is exactly 0..N) — no index
                        // gather, no bounds checks.
                        for (i, ((&a, d), (&b, &exec))) in avail_row
                            .iter()
                            .zip(deferred.iter_mut())
                            .zip(backlog.iter().zip(exec_row.iter()))
                            .enumerate()
                        {
                            if a > 0 {
                                offers += 1;
                                let est = b.saturating_since(now) + exec;
                                let n = NodeId(i as u32);
                                if best.is_none_or(|x| (est, n) < x) {
                                    best = Some((est, n));
                                }
                            } else {
                                *d += 1;
                            }
                        }
                    } else {
                        for &n in reachable {
                            if avail_row[n.index()] > 0 {
                                offers += 1;
                                let est =
                                    backlog[n.index()].saturating_since(now) + exec_row[n.index()];
                                if best.is_none_or(|b| (est, n) < b) {
                                    best = Some((est, n));
                                }
                            } else {
                                deferred[n.index()] += 1;
                            }
                        }
                    }
                    if (offers as usize) < reachable.len() {
                        self.deferred_dirty[class.index()] = true;
                    }
                } else if reachable.len() == n_total {
                    // Eager market round-trips (telemetry, §5.1 threshold
                    // or faults active), full candidate set.
                    let backlog = soa.backlog_until_slice();
                    for (i, ((market, &a), (&b, &exec))) in nodes
                        .iter_mut()
                        .zip(avail_row.iter())
                        .zip(backlog.iter().zip(exec_row.iter()))
                        .enumerate()
                    {
                        let offered = a > 0
                            || match market {
                                Some(market) => market.on_request(class),
                                None => true,
                            };
                        if offered {
                            offers += 1;
                            let est = b.saturating_since(now) + exec;
                            let n = NodeId(i as u32);
                            if best.is_none_or(|x| (est, n) < x) {
                                best = Some((est, n));
                            }
                        }
                    }
                } else {
                    for &n in reachable {
                        let offered = avail_row[n.index()] > 0
                            || match &mut nodes[n.index()] {
                                Some(market) => market.on_request(class),
                                None => true,
                            };
                        if offered {
                            offers += 1;
                            let est = soa.estimated_completion(n.index(), now, exec_of(n));
                            if best.is_none_or(|b| (est, n) < b) {
                                best = Some((est, n));
                            }
                        }
                    }
                }
                // One call-for-offers per capable node (unreachable ones
                // were still sent, they just never produced an offer),
                // one offer back per offering node, then the accept plus
                // the declines.
                self.metrics.messages += capable.len() as u64 + 2 * offers;
                match best {
                    None => {
                        // Full refusal. Under stable conditions the
                        // outcome is locked in for the rest of the
                        // period: supply only falls, prices only rise
                        // (so every node's threshold bypass stays off),
                        // and the reachable set cannot change without a
                        // kill/recover event (which clears the memo).
                        // Telemetry must be off — the eager path emits
                        // per-request rejection events.
                        if !faults_on && self.nodes.all_alive() && !self.telemetry.is_enabled() {
                            self.refused_classes[class.index()] = true;
                        }
                        return Allocation::NoOffers;
                    }
                    Some((_, server)) => {
                        if let Some(market) = &mut nodes[server.index()] {
                            market.on_accept(class);
                            let a = &mut avail_row[server.index()];
                            *a = a.saturating_sub(1);
                        }
                        (server, rtt)
                    }
                }
            }
            MechState::Greedy {
                snapshot,
                snapshot_at,
            } => {
                // §4: "immediately assign queries to server nodes that can
                // evaluate them in the least time. A small amount of
                // randomization may also be used." The client combines
                // EXPLAIN-style execution estimates with *stale* load
                // information — queue lengths as of the last collection
                // period, discounted for elapsed time — because live queues
                // of other clients' work are unobservable (the "old
                // information" herding effect of the paper's ref. [10]).
                // Assignment is unilateral: the §4 autonomy violation.
                self.metrics.messages += 2 * capable.len() as u64 + 1;
                let _ = (snapshot, snapshot_at);
                let err = self.scenario.config.greedy_estimate_error;
                let mut best: Option<(SimDuration, NodeId)> = None;
                // Only nodes whose estimate round-trip survived the link
                // are candidates this attempt.
                if reachable.len() == n_total {
                    // Full candidate set: lockstep row sweep, same as the
                    // QA-NT arm (ascending capable list of full length is
                    // exactly 0..N).
                    let backlog = self.nodes.backlog_until_slice();
                    for (i, (&b, &exec)) in backlog.iter().zip(exec_row.iter()).enumerate() {
                        let raw = b.saturating_since(now) + exec;
                        let noisy = if err > 0.0 {
                            raw * (1.0 + self.rng.float_in(-err, err))
                        } else {
                            raw
                        };
                        let n = NodeId(i as u32);
                        if best.is_none() || (noisy, n) < best.unwrap() {
                            best = Some((noisy, n));
                        }
                    }
                } else {
                    for &n in reachable {
                        let raw = self.nodes.estimated_completion(n.index(), now, exec_of(n));
                        let noisy = if err > 0.0 {
                            raw * (1.0 + self.rng.float_in(-err, err))
                        } else {
                            raw
                        };
                        if best.is_none() || (noisy, n) < best.unwrap() {
                            best = Some((noisy, n));
                        }
                    }
                }
                match best {
                    Some((_, n)) => (n, rtt),
                    // Every estimate lost: the client learned nothing and
                    // tries again next period.
                    None => return Allocation::NoOffers,
                }
            }
            MechState::Random => {
                self.metrics.messages += 1;
                (
                    qa_core::client::choose_random(&mut self.rng, capable),
                    one_way,
                )
            }
            MechState::RoundRobin { per_client } => {
                self.metrics.messages += 1;
                (per_client[origin.index()].choose(capable), one_way)
            }
            MechState::TwoProbes => {
                self.metrics.messages += 5;
                if reachable.is_empty() {
                    return Allocation::NoOffers;
                }
                let soa = &self.nodes;
                let pick = TwoProbesChooser::choose(&mut self.rng, reachable, |n| {
                    soa.backlog(n.index(), now).as_millis_f64()
                });
                (pick, rtt)
            }
            MechState::Bnqrd { coordinator } => {
                self.metrics.messages += 3;
                let ref_cost = self.scenario.templates.get(class).base_cost.as_millis_f64();
                (coordinator.assign(capable, ref_cost), rtt)
            }
            MechState::Markov { allocator } => {
                self.metrics.messages += 1;
                // The static distribution may name a dead node; fall back
                // to a random capable one.
                let pick = allocator.choose(class, &mut self.rng);
                let pick = if self.nodes.alive(pick.index()) && capable.contains(&pick) {
                    pick
                } else {
                    qa_core::client::choose_random(&mut self.rng, capable)
                };
                (pick, one_way)
            }
        };

        if faults_on {
            // The final assignment message can be lost too. The client
            // times out and resubmits next period; for QA-NT the accepted
            // supply stays committed on the server — the price a market of
            // autonomous nodes pays for an unreliable network.
            if !self
                .faults
                .delivers(choice.index(), now, &mut self.fault_rng)
            {
                self.metrics.lost_messages += 1;
                self.telemetry.emit(|| TelemetryEvent::MessageDropped {
                    node: choice.0,
                    context: "assign".to_string(),
                });
                return Allocation::NoOffers;
            }
            delay += self
                .faults
                .sample_jitter(choice.index(), &mut self.fault_rng);
        }

        let start = now + delay;
        self.metrics
            .chosen_exec_ms
            .add(exec_of(choice).as_millis_f64());
        self.metrics
            .chosen_backlog_ms
            .add(self.nodes.backlog(choice.index(), start).as_millis_f64());
        let finish = self.nodes.accept(choice.index(), start, exec_of(choice));
        self.owners[idx] = Some(choice);
        Allocation::Assigned {
            node: choice,
            finish,
            delay,
        }
    }
}

/// Rebuilds the QA-NT availability mirror from the authoritative per-node
/// supplies: `avail[class * N + node]` is how many more class requests the
/// node will answer with an offer this period. Skipping `on_request` while
/// the mirror is positive is exact because that call, with supply
/// available, mutates nothing and emits nothing; every event that *can*
/// change supply (period boundaries, partial-deployment restriction,
/// accepts) resyncs or decrements the mirror.
fn sync_avail(nodes: &[Option<qa_core::QantNode>], avail: &mut [u64]) {
    let num_nodes = nodes.len();
    let classes = avail.len().checked_div(num_nodes).unwrap_or(0);
    for (n, slot) in nodes.iter().enumerate() {
        match slot.as_ref().map(|q| q.supply()) {
            Some(Some(s)) => {
                for (k, &units) in s.as_slice().iter().enumerate() {
                    avail[k * num_nodes + n] = units;
                }
            }
            // Market node between periods (e.g. it died and its period
            // was ended without a successor): no supply, no offers.
            Some(None) => {
                for k in 0..classes {
                    avail[k * num_nodes + n] = 0;
                }
            }
            // Non-participating node (§4 partial deployment): always
            // offers; the sentinel is never meaningfully decremented.
            None => {
                for k in 0..classes {
                    avail[k * num_nodes + n] = u64::MAX;
                }
            }
        }
    }
}

fn mechanism_salt(m: MechanismKind) -> u64 {
    match m {
        MechanismKind::QaNt => 0x9E37_79B9_0001,
        MechanismKind::Greedy => 0x9E37_79B9_0002,
        MechanismKind::Random => 0x9E37_79B9_0003,
        MechanismKind::RoundRobin => 0x9E37_79B9_0004,
        MechanismKind::TwoProbes => 0x9E37_79B9_0005,
        MechanismKind::Bnqrd => 0x9E37_79B9_0006,
        MechanismKind::Markov => 0x9E37_79B9_0007,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::scenario::TwoClassParams;
    use qa_workload::arrival::{ArrivalProcess, SinusoidProcess};

    fn scenario() -> Scenario {
        Scenario::two_class(SimConfig::small_test(11), TwoClassParams::default())
    }

    /// A moderate two-class sinusoid trace over `secs` seconds at roughly
    /// `frac` of system capacity.
    fn trace_for(s: &Scenario, secs: u64, frac: f64) -> Trace {
        let mix = [2.0 / 3.0, 1.0 / 3.0];
        let capacity = s.capacity_qps(&mix);
        let peak_q1 = frac * capacity / 0.75;
        let (p1, p2) = SinusoidProcess::paper_pair(0.05, peak_q1);
        let mut rng = DetRng::seed_from_u64(s.config.seed).derive("trace");
        let horizon = SimTime::from_secs(secs);
        let mut arrivals = p1.generate(horizon, &mut rng);
        arrivals.extend(p2.generate(horizon, &mut rng));
        Trace::from_arrivals(arrivals, s.config.num_nodes, &mut rng)
    }

    fn run(s: &Scenario, m: MechanismKind, t: &Trace) -> RunOutcome {
        Federation::new(s, m, t).run(t)
    }

    #[test]
    fn all_mechanisms_complete_a_light_workload() {
        let s = scenario();
        let t = trace_for(&s, 20, 0.3);
        assert!(t.len() > 10);
        for m in MechanismKind::ALL {
            let out = run(&s, m, &t);
            assert_eq!(
                out.metrics.completed as usize,
                t.len(),
                "{m} left queries unserved: {:?}",
                out.metrics.unserved
            );
            assert!(out.metrics.mean_response_ms().unwrap() > 0.0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let s = scenario();
        let t = trace_for(&s, 10, 0.4);
        let a = run(&s, MechanismKind::QaNt, &t);
        let b = run(&s, MechanismKind::QaNt, &t);
        assert_eq!(a.metrics.mean_response_ms(), b.metrics.mean_response_ms());
        assert_eq!(a.metrics.messages, b.metrics.messages);
    }

    #[test]
    fn greedy_beats_random_under_heterogeneity() {
        let s = scenario();
        let t = trace_for(&s, 30, 0.7);
        let g = run(&s, MechanismKind::Greedy, &t);
        let r = run(&s, MechanismKind::Random, &t);
        let gm = g.metrics.mean_response_ms().unwrap();
        let rm = r.metrics.mean_response_ms().unwrap();
        assert!(rm > gm, "random {rm} should be slower than greedy {gm}");
    }

    #[test]
    fn qant_tracks_greedy_or_better_under_overload() {
        let s = scenario();
        let t = trace_for(&s, 40, 1.2);
        let q = run(&s, MechanismKind::QaNt, &t);
        let g = run(&s, MechanismKind::Greedy, &t);
        let qm = q.metrics.mean_response_ms().unwrap();
        let gm = g.metrics.mean_response_ms().unwrap();
        // The paper's central claim, in loose form for a small federation:
        // under overload QA-NT is competitive with greedy (within 25%) or
        // better.
        assert!(
            qm < gm * 1.25,
            "QA-NT {qm}ms should be competitive with Greedy {gm}ms"
        );
    }

    #[test]
    fn message_counts_reflect_protocols() {
        let s = scenario();
        let t = trace_for(&s, 10, 0.3);
        let per_query = |m: MechanismKind| {
            let out = run(&s, m, &t);
            out.metrics.messages as f64 / out.metrics.completed as f64
        };
        let random = per_query(MechanismKind::Random);
        let probes = per_query(MechanismKind::TwoProbes);
        let greedy = per_query(MechanismKind::Greedy);
        let qant = per_query(MechanismKind::QaNt);
        assert!(random < probes, "random {random} < probes {probes}");
        assert!(probes < greedy, "probes {probes} < greedy {greedy}");
        // QA-NT needs more messages than random/probes ("Although QA-NT
        // requires more network messages…", §4).
        assert!(qant > probes);
    }

    #[test]
    fn qant_defers_when_all_supply_exhausted() {
        // Strict market mode (no §5.1 threshold bypass): a burst must
        // exhaust the period supply and defer.
        let mut cfg = SimConfig::small_test(11);
        cfg.qant.price_threshold = None;
        let s = Scenario::two_class(cfg, TwoClassParams::default());
        // Huge burst at t=0: supply for the period runs out, retries occur.
        let mut rng = DetRng::seed_from_u64(3).derive("burst");
        let burst: Vec<(SimTime, ClassId)> = (0..200)
            .map(|i| (SimTime::from_micros(i), ClassId(0)))
            .collect();
        let t = Trace::from_arrivals(burst, s.config.num_nodes, &mut rng);
        let out = run(&s, MechanismKind::QaNt, &t);
        assert!(out.metrics.retries > 0, "burst should exceed period supply");
        assert!(out.metrics.completed > 0);
    }

    #[test]
    fn node_failure_orphans_queries_and_system_survives() {
        let s = scenario();
        let t = trace_for(&s, 20, 0.5);
        let mut f = Federation::new(&s, MechanismKind::Greedy, &t);
        f.kill_node_at(NodeId(0), SimTime::from_secs(5));
        let out = f.run(&t);
        assert_eq!(
            out.metrics.completed + out.metrics.unserved,
            t.len() as u64,
            "every query accounted for"
        );
        // The system keeps completing queries after the failure.
        assert!(out.metrics.completed > 0);
    }

    #[test]
    fn crash_reentry_resubmits_next_period_and_conserves() {
        let s = scenario();
        // Five Q1 queries arrive at t=100ms; every node dies at 101ms —
        // before anything can finish — and recovers at 400ms. §2.2: the
        // orphans re-enter the next period (500ms boundary) and complete.
        let mut rng = DetRng::seed_from_u64(9).derive("reentry");
        let arrivals: Vec<(SimTime, ClassId)> = (0..5)
            .map(|_| (SimTime::from_millis(100), ClassId(0)))
            .collect();
        let t = Trace::from_arrivals(arrivals, s.config.num_nodes, &mut rng);
        let mut f = Federation::new(&s, MechanismKind::Random, &t);
        for i in 0..s.config.num_nodes {
            f.kill_node_at(NodeId(i as u32), SimTime::from_millis(101));
            f.recover_node_at(NodeId(i as u32), SimTime::from_millis(400));
        }
        let out = f.run(&t);
        assert_eq!(out.metrics.completed, 5, "orphans complete after recovery");
        assert_eq!(out.metrics.unserved, 0);
        assert!(out.metrics.retries >= 5, "each orphan was resubmitted");
    }

    #[test]
    fn lossy_run_is_deterministic_per_fault_seed() {
        let s = scenario();
        let t = trace_for(&s, 15, 0.5);
        let run_with = |fault_seed: Option<u64>| {
            let mut f = Federation::new(&s, MechanismKind::QaNt, &t);
            f.set_fault_plan(FaultPlan::uniform(qa_simnet::LinkFaults::lossy(0.2)));
            if let Some(seed) = fault_seed {
                f.set_fault_seed(seed);
            }
            let out = f.run(&t);
            (
                out.metrics.mean_response_ms(),
                out.metrics.messages,
                out.metrics.lost_messages,
                out.metrics.completed,
            )
        };
        let a = run_with(None);
        let b = run_with(None);
        assert_eq!(a, b, "same seed + same plan ⇒ identical run");
        assert!(a.2 > 0, "a 20% plan must actually lose messages");
        let c = run_with(Some(0xDEAD));
        assert_ne!(a, c, "different fault seed ⇒ different loss realization");
    }

    #[test]
    fn disabled_fault_plan_is_bit_identical_to_no_plan() {
        let s = scenario();
        let t = trace_for(&s, 15, 0.6);
        for m in MechanismKind::ALL {
            let plain = run(&s, m, &t);
            let mut f = Federation::new(&s, m, &t);
            f.set_fault_plan(FaultPlan::none());
            f.set_fault_seed(0xF00D); // must be irrelevant: never drawn
            let gated = f.run(&t);
            assert_eq!(
                plain.metrics.mean_response_ms(),
                gated.metrics.mean_response_ms(),
                "{m}"
            );
            assert_eq!(plain.metrics.messages, gated.metrics.messages, "{m}");
            assert_eq!(gated.metrics.lost_messages, 0, "{m}");
            assert_eq!(plain.metrics.completed, gated.metrics.completed, "{m}");
        }
    }

    #[test]
    fn qant_completes_under_ten_percent_loss() {
        let s = scenario();
        let t = trace_for(&s, 20, 0.5);
        let mut f = Federation::new(&s, MechanismKind::QaNt, &t);
        f.set_fault_plan(FaultPlan::uniform(qa_simnet::LinkFaults::lossy(0.1)));
        let out = f.run(&t);
        assert_eq!(
            out.metrics.completed + out.metrics.unserved,
            t.len() as u64,
            "conservation under loss"
        );
        assert!(
            out.metrics.completed as f64 >= 0.95 * t.len() as f64,
            "QA-NT should complete ≥95% under 10% loss: {}/{}",
            out.metrics.completed,
            t.len()
        );
    }

    #[test]
    fn outage_window_defers_queries_until_link_returns() {
        let s = scenario();
        // All arrivals land inside a [1s, 2s) outage on every link; they
        // must retry until the network returns, then all complete.
        let mut rng = DetRng::seed_from_u64(4).derive("outage");
        let arrivals: Vec<(SimTime, ClassId)> = (0..8)
            .map(|i| (SimTime::from_millis(1_000 + i * 10), ClassId(0)))
            .collect();
        let t = Trace::from_arrivals(arrivals, s.config.num_nodes, &mut rng);
        let mut f = Federation::new(&s, MechanismKind::QaNt, &t);
        f.set_fault_plan(FaultPlan::uniform(qa_simnet::LinkFaults {
            drop_prob: 0.0,
            jitter: SimDuration::ZERO,
            outages: vec![qa_simnet::OutageWindow::new(
                SimTime::from_secs(1),
                SimTime::from_secs(2),
            )],
        }));
        let out = f.run(&t);
        assert_eq!(out.metrics.completed, 8);
        assert!(
            out.metrics.retries >= 8,
            "every query deferred past the outage"
        );
        assert!(out.metrics.lost_messages > 0);
    }

    #[test]
    fn telemetry_captures_market_and_query_lifecycle() {
        let s = scenario();
        let t = trace_for(&s, 10, 0.8);
        let (tel, buf) = Telemetry::buffered();
        let mut f = Federation::with_telemetry(&s, MechanismKind::QaNt, &t, tel);
        f.kill_node_at(NodeId(0), SimTime::from_secs(3));
        f.recover_node_at(NodeId(0), SimTime::from_secs(6));
        let out = f.run(&t);
        assert!(out.metrics.completed > 0);
        let records = buf.records();
        let kinds: std::collections::BTreeSet<&str> =
            records.iter().map(|r| r.event.kind()).collect();
        for expected in [
            "supply_computed",
            "price_adjusted",
            "query_assigned",
            "query_completed",
            "period_started",
            "node_crashed",
            "node_recovered",
        ] {
            assert!(kinds.contains(expected), "missing {expected}: {kinds:?}");
        }
        // Timestamps follow the event loop's sim-clock: non-decreasing.
        assert!(records.windows(2).all(|w| w[0].t_us <= w[1].t_us));
        // The t=0 supply solves of all 10 nodes were captured (telemetry
        // was installed before construction's first begin_period).
        let t0_supplies = records
            .iter()
            .filter(|r| r.t_us == 0 && matches!(r.event, TelemetryEvent::SupplyComputed { .. }))
            .count();
        assert_eq!(t0_supplies, s.config.num_nodes);
    }

    #[test]
    fn telemetry_enabled_run_matches_disabled_run() {
        // Observing the market must not change it.
        let s = scenario();
        let t = trace_for(&s, 10, 0.6);
        let plain = run(&s, MechanismKind::QaNt, &t);
        let (tel, buf) = Telemetry::buffered();
        let traced = Federation::with_telemetry(&s, MechanismKind::QaNt, &t, tel).run(&t);
        assert!(!buf.is_empty());
        assert_eq!(
            plain.metrics.mean_response_ms(),
            traced.metrics.mean_response_ms()
        );
        assert_eq!(plain.metrics.messages, traced.metrics.messages);
        assert_eq!(plain.metrics.completed, traced.metrics.completed);
    }

    #[test]
    fn impossible_class_counts_unserved() {
        let s = scenario();
        // Kill every Q2-capable node up front, then send Q2 queries.
        let q2_nodes = s.capable[1].clone();
        let mut rng = DetRng::seed_from_u64(5).derive("imp");
        let arrivals: Vec<(SimTime, ClassId)> = (0..5)
            .map(|i| (SimTime::from_secs(1 + i), ClassId(1)))
            .collect();
        let t = Trace::from_arrivals(arrivals, s.config.num_nodes, &mut rng);
        let mut f = Federation::new(&s, MechanismKind::Random, &t);
        for n in q2_nodes {
            f.kill_node_at(n, SimTime::from_millis(1));
        }
        let out = f.run(&t);
        assert_eq!(out.metrics.unserved, 5);
        assert_eq!(out.metrics.completed, 0);
    }
}

#[cfg(test)]
mod diag {
    use super::*;
    use crate::config::SimConfig;
    use crate::scenario::TwoClassParams;
    use qa_simnet::telemetry::Severity;
    use qa_workload::arrival::{ArrivalProcess, SinusoidProcess};

    #[test]
    #[ignore]
    fn diagnose_overload() {
        // Silent by default; set QA_TELEMETRY=stderr to see the report.
        let tel = Telemetry::from_env();
        let frac: f64 = std::env::var("DIAG_FRAC")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.2);
        let nodes: usize = std::env::var("DIAG_NODES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        let secs: u64 = std::env::var("DIAG_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(40);
        let mut cfg = SimConfig::small_test(11);
        cfg.num_nodes = nodes;
        let s = Scenario::two_class(cfg, TwoClassParams::default());
        let mix = [2.0 / 3.0, 1.0 / 3.0];
        let capacity = s.capacity_qps(&mix);
        let peak_q1 = frac * capacity / 0.75;
        let (p1, p2) = SinusoidProcess::paper_pair(0.05, peak_q1);
        let mut rng = DetRng::seed_from_u64(s.config.seed).derive("trace");
        let horizon = SimTime::from_secs(secs);
        let mut arrivals = p1.generate(horizon, &mut rng);
        arrivals.extend(p2.generate(horizon, &mut rng));
        let t = Trace::from_arrivals(arrivals, s.config.num_nodes, &mut rng);
        tel.diag(Severity::Info, "sim.diag", || {
            format!(
                "overload sweep: frac={frac} nodes={nodes} secs={secs} queries={}",
                t.len()
            )
        });
        for m in [MechanismKind::QaNt, MechanismKind::Greedy] {
            let f = Federation::new(&s, m, &t);
            // run inline to inspect node state afterwards
            let scenario = f.scenario;
            let out = f.run(&t);
            let _ = scenario;
            tel.diag(Severity::Info, "sim.diag", || {
                format!(
                    "{m}: completed={} retries={} mean={:?} q1={:?} q2={:?} busy={:.0}s",
                    out.metrics.completed,
                    out.metrics.retries,
                    out.metrics.mean_response_ms(),
                    out.metrics.mean_response_ms_of(ClassId(0)),
                    out.metrics.mean_response_ms_of(ClassId(1)),
                    out.total_busy.as_secs_f64()
                )
            });
        }
    }
}

#[cfg(test)]
mod diag_zipf {
    use super::*;
    use crate::config::SimConfig;
    use qa_simnet::telemetry::Severity;
    use qa_workload::arrival::{ArrivalProcess, ZipfProcess};

    #[test]
    #[ignore]
    fn diagnose_zipf_light() {
        let gap: u64 = std::env::var("ZIPF_MIN")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20_000);
        let cfg = SimConfig::paper_defaults();
        let s = Scenario::table3(cfg);
        let process = ZipfProcess::paper(100, SimDuration::from_millis(gap));
        let mut rng = DetRng::seed_from_u64(s.config.seed).derive("zipf-trace");
        let horizon_s = (10_000.0 * process.mean_gap_secs() / 100.0).clamp(10.0, 3_600.0);
        let mut arrivals =
            process.generate(SimTime::from_micros((horizon_s * 1e6) as u64), &mut rng);
        arrivals.sort_by_key(|(t, c)| (*t, c.index()));
        arrivals.truncate(10_000);
        let t = Trace::from_arrivals(arrivals, s.config.num_nodes, &mut rng);
        // Silent by default; set QA_TELEMETRY=stderr to see the report.
        let tel = Telemetry::from_env();
        for m in [MechanismKind::QaNt, MechanismKind::Greedy] {
            let out = Federation::new(&s, m, &t).run(&t);
            tel.diag(Severity::Info, "sim.diag_zipf", || {
                format!(
                    "{m}: completed={} retries={} mean={:?} exec@choice={:?} backlog@choice={:?}",
                    out.metrics.completed,
                    out.metrics.retries,
                    out.metrics.mean_response_ms(),
                    out.metrics.chosen_exec_ms.mean(),
                    out.metrics.chosen_backlog_ms.mean()
                )
            });
        }
    }
}
