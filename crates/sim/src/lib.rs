//! # qa-sim — discrete-event simulator of the 100-node federation
//!
//! Reproduces the simulation study of §5.1: a federation of 100
//! heterogeneous autonomous RDBMSs (Table 3) under sinusoid and zipf
//! workloads, comparing QA-NT against Greedy, Random, Round-robin, BNQRD
//! and two-random-probes (plus the Markov static allocator as the Table-2
//! extension).
//!
//! Structure:
//!
//! * [`config`] — [`SimConfig`] with `paper_defaults()` encoding Table 3,
//! * [`node`] — the per-node model: CPU/I-O/buffer hardware factors, the
//!   execution-time model, and a FIFO work-conserving queue,
//! * [`federation`] — the event loop: arrivals run the allocation
//!   protocol (with per-mechanism message accounting), executions occupy
//!   nodes, period boundaries drive QA-NT's price dynamics,
//! * [`metrics`] — per-run measurements: response times, per-period
//!   executed counts, message counts, unserved queries,
//! * [`scenario`] — canned setups: the two-class sinusoid world of
//!   Figures 4/5 and the Table-3 zipf world of Figure 6,
//! * [`experiments`] — one function per figure, returning serializable
//!   series for the bench harness,
//! * [`tracedump`] — seeded full-telemetry replay producing a
//!   byte-deterministic JSONL market trace plus convergence diagnostics.

pub mod broker;
pub mod config;
pub mod experiments;
pub mod federation;
pub mod metrics;
pub mod node;
pub mod replay;
pub mod scenario;
pub mod sharded;
pub mod tracedump;

pub use broker::BrokerTier;
pub use config::{BrokerConfig, SimConfig};
pub use federation::{Federation, RunOutcome};
pub use metrics::RunMetrics;
pub use replay::{
    check_golden_text, first_divergence, golden_spec, render_divergence, run_golden, Divergence,
    GOLDEN_PATH, GOLDEN_SEED,
};
pub use scenario::{Scenario, TwoClassParams};
pub use sharded::{ShardPlan, ShardRunOptions, ShardSpec, ShardedOutcome};
pub use tracedump::{run_trace_dump, TraceDump, TraceDumpSpec};
