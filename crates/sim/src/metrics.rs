//! Per-run measurements.
//!
//! Matches the paper's instrumentation: "In each time period, we measured
//! the number of queries executed and the average query response time of
//! the algorithms. The latter was normalized by dividing it with the
//! respective response time of QA-NT."

use qa_simnet::stats::{LogHistogram, TimeSeries, Welford};
use qa_simnet::telemetry::MetricsRegistry;
use qa_simnet::{SimDuration, SimTime};
use qa_workload::{ClassId, NodeId};

/// Measurements from one simulation run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    period: SimDuration,
    /// Response times (ms) of completed queries.
    pub response: Welford,
    /// Response-time distribution (log-bucket, mergeable across runs).
    pub response_hist: LogHistogram,
    /// Response-time series binned by period.
    pub response_series: TimeSeries,
    /// Executed-count series binned by the period of *completion*.
    executed_per_period: Vec<u64>,
    /// Executed counts per period, restricted by class (Fig. 5c needs Q1).
    executed_per_period_class: Vec<Vec<u64>>,
    /// Response times per class.
    response_per_class: Vec<Welford>,
    /// Response times per *origin* (client) node — the §6 equitable-
    /// allocation extension measures how evenly the federation treats its
    /// clients.
    response_per_origin: Vec<Welford>,
    num_classes: usize,
    /// Allocation-protocol messages sent.
    pub messages: u64,
    /// Messages lost to fault injection (always 0 with `FaultPlan::none()`).
    pub lost_messages: u64,
    /// Completed queries.
    pub completed: u64,
    /// Queries never served by the end of the run.
    pub unserved: u64,
    /// QA-NT resubmissions (retries).
    pub retries: u64,
    /// Total assignment latency (time from arrival to node assignment).
    pub assign_latency: Welford,
    /// Execution time of the chosen node per assignment (placement
    /// quality: lower = work landed on faster nodes).
    pub chosen_exec_ms: Welford,
    /// Queueing delay behind the chosen node's backlog at assignment.
    pub chosen_backlog_ms: Welford,
}

impl RunMetrics {
    /// Fresh metrics for a run with the given period and class count.
    /// (Origin tracking sizes lazily on first record.)
    pub fn new(period: SimDuration, num_classes: usize) -> RunMetrics {
        RunMetrics {
            period,
            response: Welford::new(),
            response_hist: LogHistogram::new(),
            response_series: TimeSeries::new(period),
            executed_per_period: Vec::new(),
            executed_per_period_class: vec![Vec::new(); num_classes],
            response_per_class: (0..num_classes).map(|_| Welford::new()).collect(),
            response_per_origin: Vec::new(),
            num_classes,
            messages: 0,
            lost_messages: 0,
            completed: 0,
            unserved: 0,
            retries: 0,
            assign_latency: Welford::new(),
            chosen_exec_ms: Welford::new(),
            chosen_backlog_ms: Welford::new(),
        }
    }

    /// Records a completed query.
    pub fn record_completion(&mut self, class: ClassId, arrived: SimTime, finished: SimTime) {
        self.record_completion_from(class, NodeId(0), arrived, finished);
    }

    /// Records a completed query with its origin node.
    pub fn record_completion_from(
        &mut self,
        class: ClassId,
        origin: NodeId,
        arrived: SimTime,
        finished: SimTime,
    ) {
        let resp_ms = finished.saturating_since(arrived).as_millis_f64();
        self.response.add(resp_ms);
        self.response_hist.record(resp_ms);
        if class.index() < self.num_classes {
            self.response_per_class[class.index()].add(resp_ms);
        }
        if origin.index() >= self.response_per_origin.len() {
            self.response_per_origin
                .resize_with(origin.index() + 1, Welford::new);
        }
        self.response_per_origin[origin.index()].add(resp_ms);
        self.response_series.record(finished, resp_ms);
        self.completed += 1;
        let idx = finished.period_index(self.period) as usize;
        if idx >= self.executed_per_period.len() {
            self.executed_per_period.resize(idx + 1, 0);
        }
        self.executed_per_period[idx] += 1;
        if class.index() < self.num_classes {
            let series = &mut self.executed_per_period_class[class.index()];
            if idx >= series.len() {
                series.resize(idx + 1, 0);
            }
            series[idx] += 1;
        }
    }

    /// Mean response time in ms, or `None` when nothing completed.
    pub fn mean_response_ms(&self) -> Option<f64> {
        self.response.mean()
    }

    /// Executed queries per period.
    pub fn executed_per_period(&self) -> &[u64] {
        &self.executed_per_period
    }

    /// Executed queries per period for one class.
    pub fn executed_per_period_of(&self, class: ClassId) -> &[u64] {
        &self.executed_per_period_class[class.index()]
    }

    /// Mean response time of one class (ms).
    pub fn mean_response_ms_of(&self, class: ClassId) -> Option<f64> {
        self.response_per_class[class.index()].mean()
    }

    /// Jain's fairness index over the per-origin mean response times:
    /// `(Σx)² / (n·Σx²)`, 1 = perfectly even treatment of clients,
    /// `1/n` = one client gets everything. `None` until at least two
    /// origins have completions.
    pub fn origin_fairness(&self) -> Option<f64> {
        let means: Vec<f64> = self
            .response_per_origin
            .iter()
            .filter_map(Welford::mean)
            .collect();
        if means.len() < 2 {
            return None;
        }
        let n = means.len() as f64;
        let sum: f64 = means.iter().sum();
        let sq: f64 = means.iter().map(|x| x * x).sum();
        if sq == 0.0 {
            return Some(1.0);
        }
        Some(sum * sum / (n * sq))
    }

    /// Normalized mean response vs a reference run (the paper divides by
    /// QA-NT's). > 1 means slower than the reference.
    pub fn normalized_response_vs(&self, reference: &RunMetrics) -> Option<f64> {
        match (self.mean_response_ms(), reference.mean_response_ms()) {
            (Some(a), Some(b)) if b > 0.0 => Some(a / b),
            _ => None,
        }
    }

    /// Publishes the run's aggregates into a telemetry
    /// [`MetricsRegistry`] under the `sim.` prefix, so simulator results
    /// land in the same snapshot as the telemetry layer's own spans.
    pub fn publish_to(&self, registry: &MetricsRegistry) {
        registry.counter("sim.completed").add(self.completed);
        registry.counter("sim.unserved").add(self.unserved);
        registry.counter("sim.retries").add(self.retries);
        registry.counter("sim.messages").add(self.messages);
        registry
            .counter("sim.lost_messages")
            .add(self.lost_messages);
        registry.welford("sim.response_ms").merge(&self.response);
        registry
            .histogram("sim.response_ms.hist")
            .merge(&self.response_hist);
        registry
            .welford("sim.assign_latency_ms")
            .merge(&self.assign_latency);
        registry
            .welford("sim.chosen_exec_ms")
            .merge(&self.chosen_exec_ms);
        registry
            .welford("sim.chosen_backlog_ms")
            .merge(&self.chosen_backlog_ms);
        registry.gauge("sim.service_rate").set(self.service_rate());
        if let Some(j) = self.origin_fairness() {
            registry.gauge("sim.origin_fairness").set(j);
        }
    }

    /// Merges another run's measurements into this one (used by the
    /// sharded engine to combine per-shard metrics). Both sides must use
    /// the same period and class count; per-period and per-origin series
    /// are summed element-wise, streaming stats via Welford/histogram
    /// merges. Order-insensitive, so the shard-index merge order only
    /// matters for determinism of floating-point accumulation.
    pub fn merge_from(&mut self, other: &RunMetrics) {
        assert_eq!(self.period, other.period, "merge_from: period mismatch");
        assert_eq!(
            self.num_classes, other.num_classes,
            "merge_from: class-count mismatch"
        );
        self.response.merge(&other.response);
        self.response_hist.merge(&other.response_hist);
        self.response_series.merge(&other.response_series);
        if other.executed_per_period.len() > self.executed_per_period.len() {
            self.executed_per_period
                .resize(other.executed_per_period.len(), 0);
        }
        for (i, v) in other.executed_per_period.iter().enumerate() {
            self.executed_per_period[i] += v;
        }
        for (mine, theirs) in self
            .executed_per_period_class
            .iter_mut()
            .zip(&other.executed_per_period_class)
        {
            if theirs.len() > mine.len() {
                mine.resize(theirs.len(), 0);
            }
            for (i, v) in theirs.iter().enumerate() {
                mine[i] += v;
            }
        }
        for (mine, theirs) in self
            .response_per_class
            .iter_mut()
            .zip(&other.response_per_class)
        {
            mine.merge(theirs);
        }
        if other.response_per_origin.len() > self.response_per_origin.len() {
            self.response_per_origin
                .resize_with(other.response_per_origin.len(), Welford::new);
        }
        for (mine, theirs) in self
            .response_per_origin
            .iter_mut()
            .zip(&other.response_per_origin)
        {
            mine.merge(theirs);
        }
        self.messages += other.messages;
        self.lost_messages += other.lost_messages;
        self.completed += other.completed;
        self.unserved += other.unserved;
        self.retries += other.retries;
        self.assign_latency.merge(&other.assign_latency);
        self.chosen_exec_ms.merge(&other.chosen_exec_ms);
        self.chosen_backlog_ms.merge(&other.chosen_backlog_ms);
    }

    /// Fraction of arrivals that were served.
    pub fn service_rate(&self) -> f64 {
        let total = self.completed + self.unserved;
        if total == 0 {
            1.0
        } else {
            self.completed as f64 / total as f64
        }
    }
}

/// One mechanism's summary row (Fig. 4 / Table 2 output shape).
#[derive(Debug, Clone)]
pub struct MechanismSummary {
    /// Mechanism display name.
    pub mechanism: String,
    /// Mean response time in ms.
    pub mean_response_ms: f64,
    /// Response normalized by QA-NT's.
    pub normalized_response: f64,
    /// Completed queries.
    pub completed: u64,
    /// Unserved queries.
    pub unserved: u64,
    /// Messages per completed query.
    pub messages_per_query: f64,
}

qa_simnet::impl_to_json!(MechanismSummary {
    mechanism,
    mean_response_ms,
    normalized_response,
    completed,
    unserved,
    messages_per_query
});

#[cfg(test)]
mod tests {
    use super::*;
    use qa_workload::NodeId;

    fn metrics() -> RunMetrics {
        RunMetrics::new(SimDuration::from_millis(500), 2)
    }

    #[test]
    fn records_response_and_bins_by_completion_period() {
        let mut m = metrics();
        m.record_completion(
            ClassId(0),
            SimTime::from_millis(0),
            SimTime::from_millis(400),
        );
        m.record_completion(
            ClassId(1),
            SimTime::from_millis(100),
            SimTime::from_millis(700),
        );
        assert_eq!(m.completed, 2);
        assert_eq!(m.mean_response_ms(), Some(500.0));
        assert_eq!(m.executed_per_period(), &[1, 1]);
        assert_eq!(m.executed_per_period_of(ClassId(0)), &[1]);
        assert_eq!(m.executed_per_period_of(ClassId(1)), &[0, 1]);
    }

    #[test]
    fn normalization_against_reference() {
        let mut qant = metrics();
        qant.record_completion(ClassId(0), SimTime::ZERO, SimTime::from_millis(100));
        let mut other = metrics();
        other.record_completion(ClassId(0), SimTime::ZERO, SimTime::from_millis(150));
        assert_eq!(other.normalized_response_vs(&qant), Some(1.5));
        assert_eq!(qant.normalized_response_vs(&qant), Some(1.0));
    }

    #[test]
    fn service_rate() {
        let mut m = metrics();
        m.record_completion(ClassId(0), SimTime::ZERO, SimTime::from_millis(1));
        m.unserved = 1;
        assert_eq!(m.service_rate(), 0.5);
        assert_eq!(metrics().service_rate(), 1.0);
    }

    #[test]
    fn empty_run_has_no_mean() {
        assert_eq!(metrics().mean_response_ms(), None);
        assert_eq!(metrics().normalized_response_vs(&metrics()), None);
    }

    #[test]
    fn origin_fairness_perfectly_even() {
        let mut m = metrics();
        for origin in 0..4 {
            m.record_completion_from(
                ClassId(0),
                NodeId(origin),
                SimTime::ZERO,
                SimTime::from_millis(100),
            );
        }
        assert!((m.origin_fairness().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn origin_fairness_detects_skew() {
        let mut m = metrics();
        m.record_completion_from(
            ClassId(0),
            NodeId(0),
            SimTime::ZERO,
            SimTime::from_millis(100),
        );
        m.record_completion_from(
            ClassId(0),
            NodeId(1),
            SimTime::ZERO,
            SimTime::from_millis(10_000),
        );
        let j = m.origin_fairness().unwrap();
        // Jain index for (100, 10000) ≈ 0.51.
        assert!(j < 0.6, "{j}");
    }

    #[test]
    fn origin_fairness_needs_two_origins() {
        let mut m = metrics();
        m.record_completion_from(
            ClassId(0),
            NodeId(0),
            SimTime::ZERO,
            SimTime::from_millis(1),
        );
        assert_eq!(m.origin_fairness(), None);
    }

    #[test]
    fn origin_fairness_all_zero_means_is_perfectly_fair() {
        // Instantaneous completions (0 ms) from two origins: the Jain
        // formula's denominator is 0, handled as perfectly even.
        let mut m = metrics();
        m.record_completion_from(ClassId(0), NodeId(0), SimTime::ZERO, SimTime::ZERO);
        m.record_completion_from(ClassId(0), NodeId(1), SimTime::ZERO, SimTime::ZERO);
        assert_eq!(m.origin_fairness(), Some(1.0));
    }

    #[test]
    fn origin_fairness_skips_empty_origins_between_active_ones() {
        // Origins 0 and 5 completed; 1–4 never did and must not count as
        // zero-mean clients dragging the index down.
        let mut m = metrics();
        m.record_completion_from(
            ClassId(0),
            NodeId(0),
            SimTime::ZERO,
            SimTime::from_millis(200),
        );
        m.record_completion_from(
            ClassId(0),
            NodeId(5),
            SimTime::ZERO,
            SimTime::from_millis(200),
        );
        assert!((m.origin_fairness().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_response_vs_empty_or_zero_reference_is_none() {
        let mut m = metrics();
        m.record_completion(ClassId(0), SimTime::ZERO, SimTime::from_millis(100));
        // Empty reference: no mean to normalize by.
        assert_eq!(m.normalized_response_vs(&metrics()), None);
        // Reference whose mean is exactly 0 ms: division guarded.
        let mut zero_ref = metrics();
        zero_ref.record_completion(ClassId(0), SimTime::ZERO, SimTime::ZERO);
        assert_eq!(m.normalized_response_vs(&zero_ref), None);
        // And an empty self against a valid reference.
        assert_eq!(metrics().normalized_response_vs(&m), None);
    }

    #[test]
    fn merge_from_equals_sequential_recording() {
        // Recording completions into one RunMetrics must equal recording
        // disjoint halves into two and merging.
        let completions = [
            (ClassId(0), NodeId(0), 0u64, 400u64),
            (ClassId(1), NodeId(1), 100, 700),
            (ClassId(0), NodeId(2), 600, 900),
            (ClassId(1), NodeId(0), 1200, 1500),
        ];
        let mut whole = metrics();
        for &(c, o, a, f) in &completions {
            whole.record_completion_from(c, o, SimTime::from_millis(a), SimTime::from_millis(f));
        }
        whole.messages = 10;
        whole.retries = 3;
        whole.unserved = 1;
        let (mut left, mut right) = (metrics(), metrics());
        for (i, &(c, o, a, f)) in completions.iter().enumerate() {
            let half = if i % 2 == 0 { &mut left } else { &mut right };
            half.record_completion_from(c, o, SimTime::from_millis(a), SimTime::from_millis(f));
        }
        left.messages = 4;
        right.messages = 6;
        left.retries = 3;
        right.unserved = 1;
        left.merge_from(&right);
        assert_eq!(left.completed, whole.completed);
        assert_eq!(left.messages, whole.messages);
        assert_eq!(left.retries, whole.retries);
        assert_eq!(left.unserved, whole.unserved);
        assert_eq!(left.mean_response_ms(), whole.mean_response_ms());
        assert_eq!(left.executed_per_period(), whole.executed_per_period());
        assert_eq!(
            left.executed_per_period_of(ClassId(1)),
            whole.executed_per_period_of(ClassId(1))
        );
        assert_eq!(
            left.mean_response_ms_of(ClassId(0)),
            whole.mean_response_ms_of(ClassId(0))
        );
        assert_eq!(left.origin_fairness(), whole.origin_fairness());
    }

    #[test]
    fn publish_to_registry_exports_counters_stats_and_gauges() {
        let mut m = metrics();
        m.record_completion_from(
            ClassId(0),
            NodeId(0),
            SimTime::ZERO,
            SimTime::from_millis(100),
        );
        m.record_completion_from(
            ClassId(0),
            NodeId(1),
            SimTime::ZERO,
            SimTime::from_millis(300),
        );
        m.unserved = 2;
        m.messages = 7;
        let reg = MetricsRegistry::new();
        m.publish_to(&reg);
        let snap = reg.snapshot();
        let counters = snap.get("counters").unwrap();
        assert_eq!(counters.get("sim.completed").unwrap().as_u64(), Some(2));
        assert_eq!(counters.get("sim.messages").unwrap().as_u64(), Some(7));
        let resp = snap.get("stats").unwrap().get("sim.response_ms").unwrap();
        assert_eq!(resp.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(resp.get("mean").unwrap(), &qa_simnet::Json::Float(200.0));
        assert_eq!(
            snap.get("gauges").unwrap().get("sim.service_rate").unwrap(),
            &qa_simnet::Json::Float(0.5)
        );
        assert!((reg.gauge("sim.origin_fairness").get() - 0.8).abs() < 1e-12);
    }
}
