//! The broker tier of the two-tier market (DESIGN.md §12).
//!
//! In broker mode every shard of a [`crate::sharded::ShardPlan`] run gets a
//! first-class broker: at each period boundary the shard's aggregate
//! per-class supply and mean ln-price (the same signals the PR 9 router
//! consumed raw) become the broker's sealed bid on a parent market. The
//! [`BrokerTier`] owns that market and, once per boundary:
//!
//! 1. turns the shard signals into [`qa_core::hier::ShardSignal`]s and
//!    submits them as bids (`broker_bid` telemetry, one per shard),
//! 2. clears the window's demand — the arrivals just routed plus the
//!    escalated carry from the previous window — through the parent
//!    mechanism (`parent_cleared` telemetry),
//! 3. escalates what could not be placed into the next window, capped at
//!    the tier's reported capacity (`demand_escalated` telemetry), and
//! 4. rewrites the router weights from the clearing result: each home
//!    shard's weight is its quota biased by how far its own price sits
//!    below the parent's clearing price.
//!
//! Everything here runs serially at the boundary, so broker mode is
//! byte-stable across thread budgets for free; cross-tier traffic stays at
//! the router's 2·S messages per period (bids up, quotas + prices down —
//! escalation is parent-local state, not a message).

use crate::config::BrokerConfig;
use qa_core::hier::{escalation_cap, ShardSignal};
use qa_economics::parent::{BrokerBid, ClearingOutcome, ParentMarket};
use qa_simnet::telemetry::{Telemetry, TelemetryEvent};

/// Exponent clamp for the price-bias factor `e^(π − r)`: quotas already
/// bound the weight magnitude, the bias only shades it, and an unclamped
/// exponent could overflow to `inf` and poison the stride credits.
const BIAS_EXP_CLAMP: f64 = 30.0;

/// Parent-market state for one sharded run.
pub struct BrokerTier {
    market: ParentMarket,
    /// Demand per class the parent could not place last window, carried
    /// into the next clearing.
    escalated: Vec<u64>,
    /// Lifetime units escalated across all windows (diagnostics).
    pub total_escalated: u64,
    /// Lifetime price-adjustment rounds spent by the parent (diagnostics;
    /// internal to the parent, not cross-tier messages).
    pub total_rounds: u64,
    telemetry: Telemetry,
}

impl BrokerTier {
    /// A broker tier over `k` classes. The telemetry handle should carry
    /// the driver's sim-time clock; pass [`Telemetry::disabled`] when no
    /// trace is wanted.
    pub fn new(k: usize, config: &BrokerConfig, telemetry: Telemetry) -> BrokerTier {
        config.validate();
        BrokerTier {
            market: ParentMarket::new(k, config.market),
            escalated: vec![0; k],
            total_escalated: 0,
            total_rounds: 0,
            telemetry,
        }
    }

    /// Demand currently carried toward the next clearing, per class.
    pub fn escalated(&self) -> &[u64] {
        &self.escalated
    }

    /// One period boundary: clears `window_demand` (this window's routed
    /// arrivals, a one-window-lagged proxy for the next) plus the escalated
    /// carry against the shards' boundary signals, and rewrites the router
    /// `weights` over each class's home shards from the clearing result.
    ///
    /// `supply[s][k]` / `lnp[s][k]` are the boundary signals of shard `s`,
    /// exactly as the router consumes them; `weights[k][i]` indexes
    /// `home_shards[k][i]`, matching the router's layout. Classes with a
    /// single home shard keep their weight untouched (the router never
    /// reads it), same as the raw-signal path.
    pub fn clear_window(
        &mut self,
        home_shards: &[Vec<usize>],
        supply: &[Vec<u64>],
        lnp: &[Vec<f64>],
        window_demand: &[u64],
        weights: &mut [Vec<f64>],
    ) -> ClearingOutcome {
        let k = self.market.num_classes();
        assert_eq!(window_demand.len(), k, "demand class count mismatch");
        let signals: Vec<ShardSignal> = supply
            .iter()
            .zip(lnp)
            .enumerate()
            .map(|(s, (sup, prices))| {
                let sig = ShardSignal {
                    shard: s as u32,
                    supply: sup.clone(),
                    mean_ln_price: prices.clone(),
                };
                sig.validate();
                sig
            })
            .collect();
        for sig in &signals {
            self.telemetry.emit(|| TelemetryEvent::BrokerBid {
                broker: sig.shard,
                supply: sig.supply.clone(),
                mean_ln_price: sig.mean_ln_price.clone(),
            });
        }
        let bids: Vec<BrokerBid> = signals.iter().map(ShardSignal::to_bid).collect();
        let demand: Vec<u64> = window_demand
            .iter()
            .zip(&self.escalated)
            .map(|(w, e)| w + e)
            .collect();
        let outcome = self.market.clear(&bids, &demand);
        self.total_rounds += u64::from(outcome.rounds);
        self.telemetry.emit(|| TelemetryEvent::ParentCleared {
            rounds: outcome.rounds,
            ln_prices: outcome.ln_prices.clone(),
            unserved: outcome.unserved.clone(),
        });
        self.escalated = escalation_cap(&outcome.unserved, &signals);
        for (kc, &units) in self.escalated.iter().enumerate() {
            if units > 0 {
                self.total_escalated += units;
                self.telemetry.emit(|| TelemetryEvent::DemandEscalated {
                    class: kc as u32,
                    units,
                });
            }
        }
        for (kc, homes) in home_shards.iter().enumerate() {
            if homes.len() <= 1 {
                continue;
            }
            for (i, &s) in homes.iter().enumerate() {
                let quota = outcome.allocations[s][kc] as f64;
                let bias = (outcome.ln_prices[kc] - lnp[s][kc])
                    .clamp(-BIAS_EXP_CLAMP, BIAS_EXP_CLAMP)
                    .exp();
                weights[kc][i] = (1.0 + quota) * bias;
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_simnet::telemetry::TraceRecord;
    use qa_simnet::ToJson;

    fn tier(k: usize) -> BrokerTier {
        BrokerTier::new(k, &BrokerConfig::qant(), Telemetry::disabled())
    }

    #[test]
    fn quota_and_price_bias_shape_the_weights() {
        let mut t = tier(1);
        let home_shards = vec![vec![0usize, 1]];
        // Shard 0 is cheap with ample supply; shard 1 expensive and tight.
        let supply = vec![vec![20u64], vec![2u64]];
        let lnp = vec![vec![-0.5], vec![1.5]];
        let mut weights = vec![vec![1.0, 1.0]];
        let out = t.clear_window(&home_shards, &supply, &lnp, &[10], &mut weights);
        assert_eq!(out.unserved[0], 0);
        assert!(
            weights[0][0] > weights[0][1],
            "cheap well-supplied shard must out-weigh the expensive tight one: {weights:?}"
        );
        assert!(weights[0].iter().all(|w| w.is_finite() && *w > 0.0));
    }

    #[test]
    fn unplaced_demand_escalates_into_the_next_window() {
        let mut t = tier(1);
        let home_shards = vec![vec![0usize, 1]];
        let supply = vec![vec![3u64], vec![2u64]];
        let lnp = vec![vec![0.0], vec![0.0]];
        let mut weights = vec![vec![1.0, 1.0]];
        // 9 demanded, 5 available: 4 unserved, all within tier supply.
        let out = t.clear_window(&home_shards, &supply, &lnp, &[9], &mut weights);
        assert_eq!(out.unserved[0], 4);
        assert_eq!(t.escalated(), &[4]);
        assert_eq!(t.total_escalated, 4);
        // Next window: 2 new arrivals + 4 carried = 6 demanded, 5 placed.
        let out = t.clear_window(&home_shards, &supply, &lnp, &[2], &mut weights);
        assert_eq!(out.unserved[0], 1);
        assert_eq!(t.escalated(), &[1]);
    }

    #[test]
    fn escalation_is_bounded_by_reported_capacity() {
        let mut t = tier(1);
        let home_shards = vec![vec![0usize]];
        let supply = vec![vec![3u64]];
        let lnp = vec![vec![0.0]];
        let mut weights = vec![vec![1.0]];
        for _ in 0..50 {
            t.clear_window(&home_shards, &supply, &lnp, &[100], &mut weights);
        }
        assert!(
            t.escalated()[0] <= 3,
            "carry must stay within tier capacity, got {}",
            t.escalated()[0]
        );
    }

    #[test]
    fn single_home_classes_keep_their_weight() {
        let mut t = tier(2);
        let home_shards = vec![vec![0usize], vec![0usize, 1]];
        let supply = vec![vec![5u64, 5], vec![0u64, 5]];
        let lnp = vec![vec![0.0, 0.0], vec![0.0, 0.0]];
        let mut weights = vec![vec![7.5], vec![1.0, 1.0]];
        t.clear_window(&home_shards, &supply, &lnp, &[3, 3], &mut weights);
        assert_eq!(weights[0], vec![7.5], "router never reads 1-home weights");
        assert_ne!(weights[1], vec![1.0, 1.0], "multi-home weights rewritten");
    }

    #[test]
    fn boundary_emits_the_broker_event_taxonomy_in_order() {
        let (tel, buf) = Telemetry::buffered();
        tel.set_now_us(500_000);
        let mut t = BrokerTier::new(1, &BrokerConfig::walras(), tel);
        let home_shards = vec![vec![0usize, 1]];
        let supply = vec![vec![2u64], vec![1u64]];
        let lnp = vec![vec![0.1], vec![0.4]];
        let mut weights = vec![vec![1.0, 1.0]];
        t.clear_window(&home_shards, &supply, &lnp, &[8], &mut weights);
        let records = buf.records();
        let kinds: Vec<&str> = records.iter().map(|r| r.event.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "broker_bid",
                "broker_bid",
                "parent_cleared",
                "demand_escalated"
            ]
        );
        // Every record round-trips through the strict canonical parser —
        // the check_trace contract for the new kinds.
        for r in &records {
            let line = r.to_json().dump();
            let back = TraceRecord::parse_line(&line).expect("broker event must parse");
            assert_eq!(back.to_json().dump(), line);
            assert_eq!(back.t_us, 500_000);
        }
    }
}
