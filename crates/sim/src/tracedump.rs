//! Seeded telemetry replay: a Fig. 3-style diagnostic artifact.
//!
//! Runs one QA-NT simulation with full telemetry capture — plus a small
//! deterministic fault schedule (one node crash/recovery, a lossy link
//! plan) so fault events appear in the trace — and returns the raw JSONL
//! trace, a [`ConvergenceReport`] over the per-node price trajectories,
//! and a summary JSON combining the run's metrics with the telemetry
//! registry snapshot.
//!
//! Everything in the JSONL trace is derived from sim-time and seeded
//! randomness, so two runs of the same spec are **byte-identical** — the
//! determinism guarantee `tests/telemetry.rs` pins and
//! `scripts/check_trace.sh` validates in CI.

use crate::config::SimConfig;
use crate::experiments::two_class_trace;
use crate::federation::Federation;
use crate::scenario::{Scenario, TwoClassParams};
use qa_core::MechanismKind;
use qa_simnet::json::Json;
use qa_simnet::telemetry::{ConvergenceReport, Telemetry, TraceRecord};
use qa_simnet::{FaultPlan, LinkFaults, SimTime};
use qa_workload::NodeId;

/// Parameters of a trace-dump run.
#[derive(Debug, Clone)]
pub struct TraceDumpSpec {
    /// Simulation configuration (nodes, period, seed, …).
    pub config: SimConfig,
    /// Trace horizon in seconds.
    pub secs: u64,
    /// Offered load as a fraction of system capacity.
    pub frac: f64,
    /// Sinusoid frequency of the two-class workload (Hz).
    pub freq_hz: f64,
    /// Uniform per-message drop probability (0 disables link faults).
    pub drop_prob: f64,
    /// Optional crash injection: `(node, kill_ms, recover_ms)`.
    pub kill: Option<(u32, u64, u64)>,
    /// `mean |Δ ln p|` threshold below which a period counts as quiet.
    pub convergence_tol: f64,
}

impl TraceDumpSpec {
    /// CI-sized run: 10 nodes, 20 s, mild overload, 5% loss, one crash.
    pub fn ci(seed: u64) -> TraceDumpSpec {
        TraceDumpSpec {
            config: SimConfig::small_test(seed),
            secs: 20,
            frac: 1.1,
            freq_hz: 0.05,
            drop_prob: 0.05,
            kill: Some((0, 5_000, 12_000)),
            convergence_tol: 0.02,
        }
    }

    /// Paper-scale run: 100 nodes, 120 s.
    pub fn full(seed: u64) -> TraceDumpSpec {
        TraceDumpSpec {
            config: SimConfig {
                seed,
                ..SimConfig::paper_defaults()
            },
            secs: 120,
            frac: 1.1,
            freq_hz: 0.05,
            drop_prob: 0.05,
            kill: Some((0, 30_000, 70_000)),
            convergence_tol: 0.02,
        }
    }
}

/// Everything a trace-dump run produces.
#[derive(Debug)]
pub struct TraceDump {
    /// The captured records, in emission order.
    pub records: Vec<TraceRecord>,
    /// The records as JSONL (one compact object per line).
    pub jsonl: String,
    /// Convergence diagnostics over the price trajectories.
    pub report: ConvergenceReport,
    /// Summary JSON: run shape, outcome metrics, convergence report and
    /// the telemetry registry snapshot. The registry part contains
    /// wall-clock span timings, so — unlike `jsonl` — the summary is
    /// *not* byte-deterministic.
    pub summary: Json,
}

/// Runs the spec and captures its telemetry.
pub fn run_trace_dump(spec: &TraceDumpSpec) -> TraceDump {
    let scenario = Scenario::two_class(spec.config.clone(), TwoClassParams::default());
    let trace = two_class_trace(&scenario, spec.freq_hz, spec.frac, spec.secs);
    let (telemetry, buffer) = Telemetry::buffered();
    let mut federation =
        Federation::with_telemetry(&scenario, MechanismKind::QaNt, &trace, telemetry.clone());
    if spec.drop_prob > 0.0 {
        federation.set_fault_plan(FaultPlan::uniform(LinkFaults::lossy(spec.drop_prob)));
    }
    if let Some((node, kill_ms, recover_ms)) = spec.kill {
        federation.kill_node_at(NodeId(node), SimTime::from_millis(kill_ms));
        federation.recover_node_at(NodeId(node), SimTime::from_millis(recover_ms));
    }
    let outcome = federation.run(&trace);

    let records = buffer.records();
    let jsonl = buffer.to_jsonl();
    let report = ConvergenceReport::from_records(
        &records,
        spec.config.period.as_micros(),
        spec.convergence_tol,
    );
    if let Some(registry) = telemetry.registry() {
        outcome.metrics.publish_to(registry);
    }
    let registry_snapshot = telemetry
        .registry()
        .map(|r| r.snapshot())
        .unwrap_or(Json::Null);
    let summary = qa_simnet::json_obj! {
        "mechanism": format!("{}", outcome.mechanism),
        "seed": spec.config.seed,
        "nodes": spec.config.num_nodes as u64,
        "secs": spec.secs,
        "frac": spec.frac,
        "drop_prob": spec.drop_prob,
        "queries": trace.len() as u64,
        "completed": outcome.metrics.completed,
        "unserved": outcome.metrics.unserved,
        "retries": outcome.metrics.retries,
        "mean_response_ms": outcome.metrics.mean_response_ms(),
        "trace_records": records.len() as u64,
        "convergence": report,
        "registry": registry_snapshot,
    };
    TraceDump {
        records,
        jsonl,
        report,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_spec_produces_market_fault_and_query_events() {
        let dump = run_trace_dump(&TraceDumpSpec::ci(7));
        let kinds: std::collections::BTreeSet<&str> =
            dump.records.iter().map(|r| r.event.kind()).collect();
        for expected in [
            "price_adjusted",
            "supply_computed",
            "request_rejected",
            "query_assigned",
            "query_completed",
            "message_dropped",
            "node_crashed",
            "node_recovered",
            "period_started",
        ] {
            assert!(kinds.contains(expected), "missing {expected}: {kinds:?}");
        }
        assert!(dump.report.price_adjustments > 0);
        assert!(dump.report.nodes > 0);
        assert!(!dump.report.per_class.is_empty());
        assert_eq!(dump.jsonl.lines().count(), dump.records.len());
        assert!(dump
            .summary
            .get("registry")
            .unwrap()
            .get("counters")
            .is_some());
    }
}
