//! One function per figure of the paper's §5.1 evaluation.
//!
//! Every function is parameterized by a [`SimConfig`] so the test suite can
//! run scaled-down versions while the bench harness (`qa-bench`) runs the
//! full 100-node, paper-scale sweeps. All results implement `ToJson` so
//! the harness can emit machine-readable series.

use crate::config::{BrokerConfig, SimConfig};
use crate::federation::{Federation, RunOutcome};
use crate::metrics::MechanismSummary;
use crate::scenario::{Scenario, TwoClassParams};
use crate::sharded::{ShardPlan, ShardRunOptions};
use qa_core::MechanismKind;
use qa_simnet::telemetry::Telemetry;
use qa_simnet::{DetRng, SimTime};
use qa_workload::arrival::{ArrivalProcess, SinusoidProcess, ZipfProcess};
use qa_workload::{ClassId, Trace};

/// The demand mix of the two-class workload: peak Q1 rate is twice Q2's,
/// so Q1 is 2/3 of arrivals.
pub const TWO_CLASS_MIX: [f64; 2] = [2.0 / 3.0, 1.0 / 3.0];

/// Runs one `(scenario, mechanism)` cell over `trace`.
///
/// This is the unit of parallelism for every sweep: a cell is a pure
/// function of its arguments (all randomness re-derives from the scenario
/// seed), so sweep harnesses may fan cells over threads and still collect
/// results identical to the serial loop.
pub fn run_cell(scenario: &Scenario, trace: &Trace, mechanism: MechanismKind) -> RunOutcome {
    Federation::new(scenario, mechanism, trace).run(trace)
}

/// Builds the canonical two-class sinusoid trace.
///
/// * `frac` — average offered load as a fraction of system capacity,
/// * `freq_hz` — waveform frequency,
/// * `secs` — horizon.
///
/// The average rate of a raised sinusoid is half its peak, so with
/// `peak_q2 = peak_q1/2` the total average rate is `0.75·peak_q1`; the
/// peak is solved from the requested average.
pub fn two_class_trace(scenario: &Scenario, freq_hz: f64, frac: f64, secs: u64) -> Trace {
    let capacity = scenario.capacity_qps(&TWO_CLASS_MIX);
    let peak_q1 = frac * capacity / 0.75;
    let (p1, p2) = SinusoidProcess::paper_pair(freq_hz, peak_q1);
    let mut rng = DetRng::seed_from_u64(scenario.config.seed).derive("two-class-trace");
    let horizon = SimTime::from_secs(secs);
    let mut arrivals = p1.generate(horizon, &mut rng);
    arrivals.extend(p2.generate(horizon, &mut rng));
    Trace::from_arrivals(arrivals, scenario.config.num_nodes, &mut rng)
}

// ---------------------------------------------------------------- Fig. 3

/// Figure 3: the example sinusoid workload — arrivals per half-second for
/// each class.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Bin width in ms (500 in the paper).
    pub period_ms: u64,
    /// Q1 arrivals per bin.
    pub q1_per_period: Vec<u64>,
    /// Q2 arrivals per bin.
    pub q2_per_period: Vec<u64>,
}

qa_simnet::impl_to_json!(Fig3Result {
    period_ms,
    q1_per_period,
    q2_per_period
});

/// Generates Figure 3.
pub fn fig3_sinusoid_workload(
    config: &SimConfig,
    freq_hz: f64,
    frac: f64,
    secs: u64,
) -> Fig3Result {
    let scenario = Scenario::two_class(config.clone(), TwoClassParams::default());
    let trace = two_class_trace(&scenario, freq_hz, frac, secs);
    Fig3Result {
        period_ms: config.period.as_millis(),
        q1_per_period: trace.arrivals_per_period(config.period, Some(ClassId(0))),
        q2_per_period: trace.arrivals_per_period(config.period, Some(ClassId(1))),
    }
}

// ---------------------------------------------------------------- Fig. 4

/// Figure 4: normalized average response time of every mechanism under a
/// 0.05 Hz sinusoid with peak just below capacity.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// One row per mechanism, QA-NT first.
    pub rows: Vec<MechanismSummary>,
}

qa_simnet::impl_to_json!(Fig4Result { rows });

/// The Figure-4 workload: a 0.05 Hz sinusoid whose peak sits slightly
/// below total system capacity ("peek load was slightly below total
/// system capacity" — a ~95 % peak is a ~0.71 average, i.e. 0.75 × 0.95).
pub fn fig4_workload(config: &SimConfig, secs: u64) -> (Scenario, Trace) {
    let scenario = Scenario::two_class(config.clone(), TwoClassParams::default());
    let trace = two_class_trace(&scenario, 0.05, 0.95 * 0.75, secs);
    (scenario, trace)
}

/// Folds per-mechanism outcomes (QA-NT first, as in
/// [`MechanismKind::DYNAMIC`]) into the Figure-4 rows, normalizing every
/// response by QA-NT's.
pub fn fig4_summarize(outcomes: &[RunOutcome]) -> Fig4Result {
    let qant = &outcomes[0].metrics;
    let rows = outcomes
        .iter()
        .map(|o| MechanismSummary {
            mechanism: o.mechanism.to_string(),
            mean_response_ms: o.metrics.mean_response_ms().unwrap_or(f64::NAN),
            normalized_response: o.metrics.normalized_response_vs(qant).unwrap_or(f64::NAN),
            completed: o.metrics.completed,
            unserved: o.metrics.unserved,
            messages_per_query: o.metrics.messages as f64 / o.metrics.completed.max(1) as f64,
        })
        .collect();
    Fig4Result { rows }
}

/// Runs Figure 4.
pub fn fig4_all_algorithms(config: &SimConfig, secs: u64) -> Fig4Result {
    let (scenario, trace) = fig4_workload(config, secs);
    let outcomes: Vec<_> = MechanismKind::DYNAMIC
        .iter()
        .map(|&m| run_cell(&scenario, &trace, m))
        .collect();
    fig4_summarize(&outcomes)
}

// ------------------------------------------------------------- Fig. 5a/b

/// One point of a Greedy-vs-QA-NT sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept parameter (load fraction for 5a, frequency for 5b,
    /// inter-arrival ms for Fig. 6).
    pub x: f64,
    /// QA-NT mean response (ms).
    pub qant_ms: f64,
    /// Greedy mean response (ms).
    pub greedy_ms: f64,
    /// Greedy normalized by QA-NT (the paper's y-axis; > 1 = QA-NT wins).
    pub normalized_greedy: f64,
    /// QA-NT unserved queries.
    pub qant_unserved: u64,
    /// Greedy unserved queries.
    pub greedy_unserved: u64,
}

qa_simnet::impl_to_json!(SweepPoint {
    x,
    qant_ms,
    greedy_ms,
    normalized_greedy,
    qant_unserved,
    greedy_unserved
});

/// Runs the QA-NT/Greedy pair on one trace and folds both outcomes into a
/// [`SweepPoint`] at abscissa `x`. One sweep cell.
pub fn sweep_point(scenario: &Scenario, trace: &Trace, x: f64) -> SweepPoint {
    let q = run_cell(scenario, trace, MechanismKind::QaNt);
    let g = run_cell(scenario, trace, MechanismKind::Greedy);
    SweepPoint {
        x,
        qant_ms: q.metrics.mean_response_ms().unwrap_or(f64::NAN),
        greedy_ms: g.metrics.mean_response_ms().unwrap_or(f64::NAN),
        normalized_greedy: g
            .metrics
            .normalized_response_vs(&q.metrics)
            .unwrap_or(f64::NAN),
        qant_unserved: q.metrics.unserved,
        greedy_unserved: g.metrics.unserved,
    }
}

/// One Figure-5a cell: the QA-NT/Greedy pair at load fraction `frac`
/// (0.05 Hz sinusoid).
pub fn fig5a_point(scenario: &Scenario, frac: f64, secs: u64) -> SweepPoint {
    let trace = two_class_trace(scenario, 0.05, frac, secs);
    sweep_point(scenario, &trace, frac)
}

/// Figure 5a: load sweep at 0.05 Hz, average workload 10–300 % of
/// capacity.
pub fn fig5a_load_sweep(config: &SimConfig, fractions: &[f64], secs: u64) -> Vec<SweepPoint> {
    let scenario = Scenario::two_class(config.clone(), TwoClassParams::default());
    fractions
        .iter()
        .map(|&f| fig5a_point(&scenario, f, secs))
        .collect()
}

/// One Figure-5b cell: the QA-NT/Greedy pair at sinusoid frequency
/// `freq_hz` (80 % average load).
pub fn fig5b_point(scenario: &Scenario, freq_hz: f64, secs: u64) -> SweepPoint {
    let trace = two_class_trace(scenario, freq_hz, 0.8, secs);
    sweep_point(scenario, &trace, freq_hz)
}

/// Figure 5b: frequency sweep 0.05–2 Hz at 80 % average load.
pub fn fig5b_frequency_sweep(config: &SimConfig, freqs_hz: &[f64], secs: u64) -> Vec<SweepPoint> {
    let scenario = Scenario::two_class(config.clone(), TwoClassParams::default());
    freqs_hz
        .iter()
        .map(|&f| fig5b_point(&scenario, f, secs))
        .collect()
}

// ---------------------------------------------------------------- Fig. 5c

/// Figure 5c: Q1 arrivals vs Q1 queries executed per half-second, for
/// QA-NT and Greedy, near system capacity.
#[derive(Debug, Clone)]
pub struct Fig5cResult {
    /// Bin width (ms).
    pub period_ms: u64,
    /// Q1 arrivals per bin.
    pub arrivals_q1: Vec<u64>,
    /// Q1 completions per bin under QA-NT.
    pub executed_q1_qant: Vec<u64>,
    /// Q1 completions per bin under Greedy.
    pub executed_q1_greedy: Vec<u64>,
}

qa_simnet::impl_to_json!(Fig5cResult {
    period_ms,
    arrivals_q1,
    executed_q1_qant,
    executed_q1_greedy
});

/// The Figure-5c workload: 0.05 Hz sinusoid at 95 % of capacity.
pub fn fig5c_workload(config: &SimConfig, secs: u64) -> (Scenario, Trace) {
    let scenario = Scenario::two_class(config.clone(), TwoClassParams::default());
    let trace = two_class_trace(&scenario, 0.05, 0.95, secs);
    (scenario, trace)
}

/// Folds the QA-NT and Greedy outcomes of the Figure-5c trace into the
/// per-period tracking series.
pub fn fig5c_from_outcomes(
    config: &SimConfig,
    trace: &Trace,
    qant: &RunOutcome,
    greedy: &RunOutcome,
) -> Fig5cResult {
    Fig5cResult {
        period_ms: config.period.as_millis(),
        arrivals_q1: trace.arrivals_per_period(config.period, Some(ClassId(0))),
        executed_q1_qant: qant.metrics.executed_per_period_of(ClassId(0)).to_vec(),
        executed_q1_greedy: greedy.metrics.executed_per_period_of(ClassId(0)).to_vec(),
    }
}

/// Runs Figure 5c.
pub fn fig5c_tracking(config: &SimConfig, secs: u64) -> Fig5cResult {
    let (scenario, trace) = fig5c_workload(config, secs);
    let q = run_cell(&scenario, &trace, MechanismKind::QaNt);
    let g = run_cell(&scenario, &trace, MechanismKind::Greedy);
    fig5c_from_outcomes(config, &trace, &q, &g)
}

// ---------------------------------------------------------------- Fig. 6

/// The Figure-6 world: the Table-3 generator with the §5.1 threshold
/// engaged.
///
/// The zipf world has 100 classes whose execution times (≈2–8 s) dwarf
/// the 500 ms period, so per-period integer supply is fractional for
/// every class and strict admission control mostly adds quantization
/// friction. This is exactly the deployment the paper's §5.1 threshold
/// remark addresses ("track query prices but only use them ... if they
/// are above a specific threshold"), so the Fig. 6 runs use it.
pub fn fig6_scenario(config: &SimConfig) -> Scenario {
    let mut config = config.clone();
    config.qant.price_threshold = Some(2.0);
    config.qant.renormalize_prices = false; // incompatible with thresholds
    Scenario::table3(config)
}

/// One Figure-6 cell: zipf trace at minimum inter-arrival `gap_ms`,
/// truncated to roughly `max_queries` arrivals.
pub fn fig6_point(scenario: &Scenario, gap_ms: u64, max_queries: usize) -> SweepPoint {
    let process = ZipfProcess::paper(
        scenario.templates.num_classes(),
        qa_simnet::SimDuration::from_millis(gap_ms),
    );
    let mut rng = DetRng::seed_from_u64(scenario.config.seed).derive("zipf-trace");
    // Horizon sized to produce roughly `max_queries` arrivals.
    let horizon_s = (max_queries as f64 * process.mean_gap_secs()
        / scenario.templates.num_classes() as f64)
        .clamp(10.0, 3_600.0);
    let arrivals = process.generate(SimTime::from_secs_f64_pub(horizon_s), &mut rng);
    let mut arrivals = arrivals;
    arrivals.sort_by_key(|(t, c)| (*t, c.index()));
    arrivals.truncate(max_queries);
    let trace = Trace::from_arrivals(arrivals, scenario.config.num_nodes, &mut rng);
    sweep_point(scenario, &trace, gap_ms as f64)
}

/// Figure 6: zipf workload, Greedy normalized response vs per-class
/// *minimum* inter-arrival time (the paper's x-axis).
pub fn fig6_zipf_sweep(
    config: &SimConfig,
    min_inter_arrival_ms: &[u64],
    max_queries: usize,
) -> Vec<SweepPoint> {
    let scenario = fig6_scenario(config);
    min_inter_arrival_ms
        .iter()
        .map(|&gap_ms| fig6_point(&scenario, gap_ms, max_queries))
        .collect()
}

// ------------------------------------------------------------- fig_scale

/// One cell of the scaling sweep: the QA-NT federation at `nodes` nodes
/// run through the sharded engine at `shards` shards (1 = the flat
/// engine's exact behaviour). Timing fields are filled by the harness —
/// the simulation itself never reads a wall clock, so the timing-free
/// projection of a point is deterministic.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Federation size.
    pub nodes: u64,
    /// Shard count the engine used.
    pub shards: u64,
    /// Arrivals in the trace.
    pub queries: u64,
    /// Period boundaries stepped.
    pub periods: u64,
    /// Completed queries.
    pub completed: u64,
    /// Unserved queries.
    pub unserved: u64,
    /// Mean response (ms).
    pub mean_response_ms: f64,
    /// First period whose mean |Δ ln p| fell below
    /// [`SCALE_CONVERGENCE_EPS`]; −1 when the run never settled.
    pub convergence_period: i64,
    /// Cross-shard signal messages (2 per shard per boundary).
    pub cross_messages: u64,
    /// Wall-clock seconds (harness-filled; 0 in determinism artifacts).
    pub elapsed_s: f64,
    /// Simulated periods per wall-clock second (harness-filled).
    pub periods_per_s: f64,
    /// Queries per wall-clock second (harness-filled).
    pub queries_per_s: f64,
}

qa_simnet::impl_to_json!(ScalePoint {
    nodes,
    shards,
    queries,
    periods,
    completed,
    unserved,
    mean_response_ms,
    convergence_period,
    cross_messages,
    elapsed_s,
    periods_per_s,
    queries_per_s
});

/// Price-settling threshold for the sweep's convergence-period column.
pub const SCALE_CONVERGENCE_EPS: f64 = 1e-2;

/// The scaling world: the two-class scenario at an arbitrary node count.
pub fn scale_world(nodes: usize, seed: u64) -> Scenario {
    Scenario::two_class(SimConfig::scaled(nodes, seed), TwoClassParams::default())
}

/// The scaling trace: 0.05 Hz sinusoid at 75 % of the (size-dependent)
/// system capacity, so per-node load is constant across sweep sizes.
pub fn scale_trace(scenario: &Scenario, secs: u64) -> Trace {
    two_class_trace(scenario, 0.05, 0.75, secs)
}

/// Runs one scaling cell and folds it into a [`ScalePoint`] (timing
/// fields zeroed — the harness stamps them).
pub fn scale_point(scenario: &Scenario, trace: &Trace, shards: usize) -> ScalePoint {
    let out = ShardPlan::build(scenario, shards).run(trace);
    ScalePoint {
        nodes: scenario.config.num_nodes as u64,
        shards: out.num_shards as u64,
        queries: trace.len() as u64,
        periods: out.periods as u64,
        completed: out.outcome.metrics.completed,
        unserved: out.outcome.metrics.unserved,
        mean_response_ms: out.outcome.metrics.mean_response_ms().unwrap_or(f64::NAN),
        convergence_period: out
            .convergence_period(SCALE_CONVERGENCE_EPS)
            .map_or(-1, |p| p as i64),
        cross_messages: out.cross_messages,
        elapsed_s: 0.0,
        periods_per_s: 0.0,
        queries_per_s: 0.0,
    }
}

// -------------------------------------------------------------- fig_hier

/// Engine variants compared by the hierarchical-market sweep (`fig_hier`),
/// in column order: the flat engine, the PR 9 raw-signal router, and the
/// two-tier broker market under each parent mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HierMode {
    /// One shard, no cross-shard coordination — the flat engine baseline.
    Flat,
    /// Sharded with the weight-proportional router over raw signals.
    Router,
    /// Sharded with the broker tier clearing on a QA-NT parent market.
    BrokerQant,
    /// Sharded with the broker tier clearing via WALRAS tâtonnement.
    BrokerWalras,
}

impl HierMode {
    /// Every mode, in sweep column order.
    pub const ALL: [HierMode; 4] = [
        HierMode::Flat,
        HierMode::Router,
        HierMode::BrokerQant,
        HierMode::BrokerWalras,
    ];

    /// Stable table/JSON label.
    pub fn label(self) -> &'static str {
        match self {
            HierMode::Flat => "flat",
            HierMode::Router => "router",
            HierMode::BrokerQant => "broker_qant",
            HierMode::BrokerWalras => "broker_walras",
        }
    }

    /// The broker configuration this mode installs on the run, if any.
    pub fn broker(self) -> Option<BrokerConfig> {
        match self {
            HierMode::Flat | HierMode::Router => None,
            HierMode::BrokerQant => Some(BrokerConfig::qant()),
            HierMode::BrokerWalras => Some(BrokerConfig::walras()),
        }
    }

    /// The shard count this mode runs at when the sweep asks for
    /// `preferred` shards (the flat baseline pins itself to one).
    pub fn shards(self, preferred: usize) -> usize {
        match self {
            HierMode::Flat => 1,
            _ => preferred.max(1),
        }
    }
}

/// One cell of the hierarchical-market sweep: a [`HierMode`] engine
/// variant over the scaling world. Timing fields are harness-filled, like
/// [`ScalePoint`]; the timing-free projection is deterministic.
#[derive(Debug, Clone)]
pub struct HierPoint {
    /// Federation size.
    pub nodes: u64,
    /// Shard count the engine used.
    pub shards: u64,
    /// Engine variant ([`HierMode::label`]).
    pub mode: String,
    /// Arrivals in the trace.
    pub queries: u64,
    /// Period boundaries stepped.
    pub periods: u64,
    /// Completed queries.
    pub completed: u64,
    /// Unserved queries.
    pub unserved: u64,
    /// QA-NT resubmissions — each is a placement some node rejected.
    pub retries: u64,
    /// Mean response (ms).
    pub mean_response_ms: f64,
    /// First period whose mean |Δ ln p| fell below
    /// [`SCALE_CONVERGENCE_EPS`]; −1 when the run never settled.
    pub convergence_period: i64,
    /// Cross-tier signal messages (2 per shard per boundary in every
    /// sharded mode — broker bids ride the same channel the raw signals
    /// did).
    pub cross_messages: u64,
    /// Demand units the parent market escalated across windows (broker
    /// modes only).
    pub escalated_units: u64,
    /// Price-adjustment rounds the parent market spent (broker modes
    /// only; parent-local, not messages).
    pub parent_rounds: u64,
    /// Inter-shard allocation efficiency: completed placements per
    /// placement attempt, `completed / (completed + retries)`.
    pub alloc_efficiency: f64,
    /// Wall-clock seconds (harness-filled; 0 in determinism artifacts).
    pub elapsed_s: f64,
    /// Simulated periods per wall-clock second (harness-filled).
    pub periods_per_s: f64,
    /// Queries per wall-clock second (harness-filled).
    pub queries_per_s: f64,
}

qa_simnet::impl_to_json!(HierPoint {
    nodes,
    shards,
    mode,
    queries,
    periods,
    completed,
    unserved,
    retries,
    mean_response_ms,
    convergence_period,
    cross_messages,
    escalated_units,
    parent_rounds,
    alloc_efficiency,
    elapsed_s,
    periods_per_s,
    queries_per_s
});

/// Runs one hierarchical-market cell and folds it into a [`HierPoint`]
/// (timing fields zeroed — the harness stamps them). `telemetry` receives
/// the broker-tier events when the mode has a broker; pass
/// [`Telemetry::disabled`] otherwise.
pub fn hier_point(
    scenario: &Scenario,
    trace: &Trace,
    shards: usize,
    mode: HierMode,
    telemetry: Telemetry,
) -> HierPoint {
    let plan = ShardPlan::build(scenario, mode.shards(shards));
    let options = ShardRunOptions {
        broker: mode.broker(),
        telemetry,
        ..ShardRunOptions::default()
    };
    let out = plan.run_with_options(trace, &options);
    let m = &out.outcome.metrics;
    let attempts = m.completed + m.retries;
    HierPoint {
        nodes: scenario.config.num_nodes as u64,
        shards: out.num_shards as u64,
        mode: mode.label().to_string(),
        queries: trace.len() as u64,
        periods: out.periods as u64,
        completed: m.completed,
        unserved: m.unserved,
        retries: m.retries,
        mean_response_ms: m.mean_response_ms().unwrap_or(f64::NAN),
        convergence_period: out
            .convergence_period(SCALE_CONVERGENCE_EPS)
            .map_or(-1, |p| p as i64),
        cross_messages: out.cross_messages,
        escalated_units: out.escalated_units,
        parent_rounds: out.parent_rounds,
        alloc_efficiency: if attempts > 0 {
            m.completed as f64 / attempts as f64
        } else {
            0.0
        },
        elapsed_s: 0.0,
        periods_per_s: 0.0,
        queries_per_s: 0.0,
    }
}

/// `SimTime` lacks a public fractional-seconds constructor; adapter trait
/// to keep the call site readable.
trait SimTimeExt {
    fn from_secs_f64_pub(s: f64) -> SimTime;
}

impl SimTimeExt for SimTime {
    fn from_secs_f64_pub(s: f64) -> SimTime {
        SimTime::from_micros((s.max(0.0) * 1e6) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig::small_test(2007)
    }

    #[test]
    fn fig3_waveform_oscillates_with_phase_offset() {
        let r = fig3_sinusoid_workload(&cfg(), 0.05, 0.6, 40);
        assert_eq!(r.period_ms, 500);
        let max_q1 = *r.q1_per_period.iter().max().unwrap();
        let min_q1 = *r.q1_per_period.iter().min().unwrap();
        assert!(
            max_q1 >= 3 * (min_q1 + 1) / 2,
            "waveform too flat: {max_q1} vs {min_q1}"
        );
        // Total Q1 ≈ 2 × total Q2.
        let q1: u64 = r.q1_per_period.iter().sum();
        let q2: u64 = r.q2_per_period.iter().sum();
        let ratio = q1 as f64 / q2.max(1) as f64;
        // Expected 2.0; wide tolerance for a short, small-sample trace.
        assert!((1.3..3.0).contains(&ratio), "Q1/Q2 ratio {ratio}");
    }

    #[test]
    fn fig4_qant_first_and_normalized_to_one() {
        let r = fig4_all_algorithms(&cfg(), 20);
        assert_eq!(r.rows.len(), 6);
        assert_eq!(r.rows[0].mechanism, "QA-NT");
        assert!((r.rows[0].normalized_response - 1.0).abs() < 1e-9);
        // Load balancers should be slower than QA-NT near capacity.
        let random = r.rows.iter().find(|x| x.mechanism == "Random").unwrap();
        assert!(
            random.normalized_response > 1.0,
            "{}",
            random.normalized_response
        );
    }

    #[test]
    fn fig5a_sweep_produces_monotone_x() {
        let pts = fig5a_load_sweep(&cfg(), &[0.3, 1.0], 15);
        assert_eq!(pts.len(), 2);
        assert!(pts[0].x < pts[1].x);
        assert!(pts.iter().all(|p| p.qant_ms.is_finite()));
    }

    #[test]
    fn fig5c_series_cover_the_horizon() {
        let r = fig5c_tracking(&cfg(), 15);
        assert!(!r.arrivals_q1.is_empty());
        assert!(!r.executed_q1_qant.is_empty());
        let arr: u64 = r.arrivals_q1.iter().sum();
        let done: u64 = r.executed_q1_qant.iter().sum();
        assert!(done <= arr + 1);
        assert!(done > 0);
    }

    #[test]
    fn fig6_runs_at_small_scale() {
        let mut c = cfg();
        c.num_nodes = 20;
        let pts = fig6_zipf_sweep(&c, &[2_000, 10_000], 300);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!(p.qant_ms.is_finite() && p.qant_ms > 0.0, "{p:?}");
        }
    }

    #[test]
    fn hier_point_covers_every_mode_and_conserves_queries() {
        let scenario = scale_world(20, 2007);
        let trace = scale_trace(&scenario, 10);
        for mode in HierMode::ALL {
            let p = hier_point(&scenario, &trace, 4, mode, Telemetry::disabled());
            assert_eq!(p.mode, mode.label());
            assert_eq!(
                p.completed + p.unserved,
                p.queries,
                "{}: every arrival completes or is unserved exactly once",
                mode.label()
            );
            assert!(p.completed > 0, "{}: nothing ran", mode.label());
            assert!(
                p.alloc_efficiency > 0.0 && p.alloc_efficiency <= 1.0,
                "{}: alloc_efficiency {}",
                mode.label(),
                p.alloc_efficiency
            );
            match mode {
                HierMode::Flat => {
                    assert_eq!(p.shards, 1);
                    assert_eq!(p.cross_messages, 2 * p.periods);
                    assert_eq!(p.escalated_units, 0);
                    assert_eq!(p.parent_rounds, 0);
                }
                HierMode::Router => {
                    assert_eq!(p.shards, 4);
                    assert_eq!(p.cross_messages, 2 * 4 * p.periods);
                    assert_eq!(p.escalated_units, 0);
                    assert_eq!(p.parent_rounds, 0);
                }
                HierMode::BrokerQant | HierMode::BrokerWalras => {
                    assert_eq!(p.shards, 4);
                    assert_eq!(
                        p.cross_messages,
                        2 * 4 * p.periods,
                        "{}: broker mode must keep the router's O(S) traffic",
                        mode.label()
                    );
                    assert!(p.parent_rounds > 0, "{}: parent never priced", mode.label());
                }
            }
        }
    }

    #[test]
    fn hier_point_json_carries_the_mode_label() {
        let scenario = scale_world(12, 7);
        let trace = scale_trace(&scenario, 6);
        let p = hier_point(
            &scenario,
            &trace,
            2,
            HierMode::BrokerQant,
            Telemetry::disabled(),
        );
        let json = qa_simnet::ToJson::to_json(&p).dump();
        assert!(json.contains("\"mode\":\"broker_qant\""), "{json}");
        assert!(json.contains("\"alloc_efficiency\":"), "{json}");
        assert!(json.contains("\"escalated_units\":"), "{json}");
    }
}
