//! Property tests for the two-tier market's conservation law, driven by
//! seeded [`DetRng`] loops (the hermetic-build substitute for proptest):
//! whatever the shard layout, broker mechanism, thread budget or fault
//! schedule, every arrival of the trace is completed or unserved exactly
//! once — queries neither vanish into nor multiply out of the tier
//! boundary (routing, parent clearing, escalation, crash re-entry).

use qa_sim::config::BrokerConfig;
use qa_sim::experiments::{scale_trace, scale_world};
use qa_sim::sharded::{ShardPlan, ShardRunOptions};
use qa_simnet::{DetRng, SimTime};
use qa_workload::NodeId;

const CASES: usize = 24;

/// One random configuration: world size, shard count, parent mechanism,
/// horizon and (sometimes) a crash/recovery pair.
struct Case {
    nodes: usize,
    shards: usize,
    broker: Option<BrokerConfig>,
    secs: u64,
    kills: Vec<(NodeId, SimTime)>,
    recoveries: Vec<(NodeId, SimTime)>,
}

fn draw_case(rng: &mut DetRng) -> Case {
    let nodes = rng.int_in(12, 48) as usize;
    let shards = rng.int_in(1, 6) as usize;
    let broker = match rng.int_in(0, 2) {
        0 => None,
        1 => Some(BrokerConfig::qant()),
        _ => Some(BrokerConfig::walras()),
    };
    let secs = rng.int_in(6, 10);
    let mut kills = Vec::new();
    let mut recoveries = Vec::new();
    if rng.chance(0.5) {
        // One node dies mid-run; half the time it re-enters later, so the
        // router and the broker both see the shard's supply collapse and
        // (sometimes) come back.
        let victim = NodeId(rng.int_in(0, nodes as u64 - 1) as u32);
        let down_at = rng.int_in(1, secs / 2);
        kills.push((victim, SimTime::from_secs(down_at)));
        if rng.chance(0.5) {
            let up_at = rng.int_in(down_at + 1, secs);
            recoveries.push((victim, SimTime::from_secs(up_at)));
        }
    }
    Case {
        nodes,
        shards,
        broker,
        secs,
        kills,
        recoveries,
    }
}

/// Completed + unserved == arrivals, for every engine configuration.
#[test]
fn two_tier_routing_conserves_queries() {
    let mut rng = DetRng::seed_from_u64(0x41E7_2007);
    for case_no in 0..CASES {
        let case = draw_case(&mut rng);
        let seed = rng.int_in(1, 10_000);
        let scenario = scale_world(case.nodes, seed);
        let trace = scale_trace(&scenario, case.secs);
        let plan = ShardPlan::build(&scenario, case.shards);
        let options = ShardRunOptions {
            budget: rng.int_in(1, 8) as usize,
            broker: case.broker,
            kills: case.kills.clone(),
            recoveries: case.recoveries.clone(),
            ..ShardRunOptions::default()
        };
        let out = plan.run_with_options(&trace, &options);
        let m = &out.outcome.metrics;
        assert_eq!(
            m.completed + m.unserved,
            trace.len() as u64,
            "case {case_no}: nodes={} shards={} broker={} kills={} recoveries={}",
            case.nodes,
            case.shards,
            case.broker.is_some(),
            case.kills.len(),
            case.recoveries.len(),
        );
        if case.broker.is_none() {
            assert_eq!(
                out.escalated_units, 0,
                "case {case_no}: the raw router has no parent to escalate to"
            );
        }
        assert_eq!(
            out.signal_history.len(),
            out.periods,
            "case {case_no}: one convergence sample per period"
        );
    }
}

/// A crash-and-re-entry schedule conserves queries under both parent
/// mechanisms on the *same* world and trace — the dead window escalates
/// or rejects, the recovery re-absorbs, nothing is double-counted.
#[test]
fn crash_reentry_conserves_under_both_mechanisms() {
    let scenario = scale_world(24, 77);
    let trace = scale_trace(&scenario, 10);
    let plan = ShardPlan::build(&scenario, 4);
    for broker in [Some(BrokerConfig::qant()), Some(BrokerConfig::walras())] {
        let options = ShardRunOptions {
            broker,
            kills: vec![
                (NodeId(5), SimTime::from_secs(2)),
                (NodeId(13), SimTime::from_secs(3)),
            ],
            recoveries: vec![(NodeId(5), SimTime::from_secs(6))],
            ..ShardRunOptions::default()
        };
        let out = plan.run_with_options(&trace, &options);
        let m = &out.outcome.metrics;
        assert_eq!(m.completed + m.unserved, trace.len() as u64);
        assert!(
            m.completed > 0,
            "federation must keep serving through the crash"
        );
    }
}
