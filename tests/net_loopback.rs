//! Multi-process federation over TCP loopback, compared against the
//! in-process channel transport on the same seed.
//!
//! Five `qad` servers run as real child processes on ephemeral
//! `127.0.0.1` ports; the driver connects a [`TcpTransport`] and replays
//! the same seeded workload it replays over a [`ChannelTransport`]
//! in-process fleet. The transports must be observationally
//! interchangeable: same query/class sequence, zero failures, equal
//! completed totals, and per-node price vectors of the configured shape.
//!
//! Wall-clock-dependent details (exactly which node wins a given
//! negotiation) are *not* asserted — scheduling noise across processes
//! legitimately perturbs per-node assignment counts.

use query_markets::cluster::ctl::{collect_prices, Federation};
use query_markets::cluster::{run_experiment, run_workload, FedConfig, Transport};
use query_markets::simnet::telemetry::Telemetry;
use query_markets::simnet::with_watchdog;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// A scratch directory for this test run, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("qa-net-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The federation under test: `qa-ctl init`'s template, shrunk a little
/// for suite latency and with loss disabled so parity is exact.
fn test_fed() -> FedConfig {
    let mut fed = FedConfig::example();
    fed.num_queries = 30;
    fed.drop_prob = 0.0;
    fed
}

fn kinds_in(trace: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(trace).expect("read trace");
    text.lines()
        .filter_map(|l| {
            let (_, rest) = l.split_once("\"type\":\"")?;
            let (kind, _) = rest.split_once('"')?;
            Some(kind.to_string())
        })
        .collect()
}

#[test]
fn five_process_federation_matches_in_process_allocation_totals() {
    let scratch = Scratch::new("loopback");
    let dir = scratch.0.clone();
    let fed = test_fed();

    // In-process reference: the same FedConfig drives a channel-transport
    // fleet through the identical workload.
    let reference = run_experiment(&fed.spec(), &fed.cluster_config(Telemetry::disabled()))
        .expect("in-process run");

    let (tcp, prices, clean) = with_watchdog("five-process TCP federation", 180, move || {
        let config_path = dir.join("fed.json");
        std::fs::write(&config_path, fed.dump()).expect("write federation config");
        let trace_dir = dir.join("traces");
        std::fs::create_dir_all(&trace_dir).expect("create trace dir");

        let federation = Federation::spawn(
            &fed,
            Path::new(env!("CARGO_BIN_EXE_qad")),
            config_path.to_str().expect("utf-8 path"),
            Some(&trace_dir),
        )
        .expect("spawn 5-node federation");
        assert_eq!(federation.addrs.len(), fed.num_nodes);

        let driver_trace = dir.join("driver.jsonl");
        let telemetry =
            Telemetry::to_file(driver_trace.to_str().expect("utf-8 path")).expect("trace file");
        let transport: Arc<dyn Transport> =
            Arc::new(federation.connect(&telemetry).expect("connect to fleet"));
        let result = run_workload(
            &fed.spec(),
            &fed.cluster_config(telemetry),
            Arc::clone(&transport),
        )
        .expect("TCP run");
        let prices = collect_prices(transport.as_ref(), Duration::from_secs(10));
        transport.shutdown();
        let clean = federation.wait();

        // Driver telemetry captured the transport events for every peer.
        let kinds = kinds_in(&driver_trace);
        for required in ["peer_connected", "handshake_completed"] {
            assert_eq!(
                kinds.iter().filter(|k| *k == required).count(),
                fed.num_nodes,
                "driver trace must record {required} once per peer"
            );
        }
        // Each server wrote its own trace and saw the driver connect.
        for node in 0..fed.num_nodes {
            let kinds = kinds_in(&trace_dir.join(format!("node{node}.jsonl")));
            assert!(
                kinds.iter().any(|k| k == "handshake_completed"),
                "node {node} trace must record the driver handshake"
            );
        }
        (result, prices, clean)
    });

    assert!(clean, "every qad child must exit cleanly after Shutdown");

    // Allocation parity with the in-process transport on the same seed.
    assert_eq!(reference.failed, 0, "in-process run must not fail queries");
    assert_eq!(tcp.failed, 0, "TCP run must not fail queries");
    assert_eq!(
        tcp.outcomes.len(),
        reference.outcomes.len(),
        "both transports issue the identical workload"
    );
    let classes = |r: &query_markets::cluster::ExperimentResult| -> Vec<u32> {
        r.outcomes.iter().map(|o| o.class).collect()
    };
    assert_eq!(
        classes(&tcp),
        classes(&reference),
        "the seeded query/class sequence is transport-independent"
    );
    let completed = |r: &query_markets::cluster::ExperimentResult| -> usize {
        r.outcomes.iter().filter(|o| o.node.is_some()).count()
    };
    assert_eq!(
        completed(&tcp),
        completed(&reference),
        "allocation totals must match across transports"
    );
    assert!((tcp.completion_rate - reference.completion_rate).abs() < f64::EPSILON);

    // Every node answered the post-run price dump with a full vector.
    assert_eq!(prices.len(), 5);
    for (node, reply) in prices.iter().enumerate() {
        let reply = reply.as_ref().unwrap_or_else(|| {
            panic!("node {node} did not answer the price dump");
        });
        assert_eq!(reply.node, node);
        assert_eq!(
            reply.prices.len(),
            test_fed().num_classes,
            "node {node} must price every class"
        );
    }
}

#[test]
fn federation_survives_driver_disconnect_without_shutdown() {
    // A driver that drops its connections without sending Shutdown must
    // not take the servers down: qa-ctl can reconnect for inspection.
    let scratch = Scratch::new("reconnect");
    let dir = scratch.0.clone();
    let mut fed = test_fed();
    fed.num_nodes = 2;

    with_watchdog("driver reconnect over TCP", 120, move || {
        let config_path = dir.join("fed.json");
        std::fs::write(&config_path, fed.dump()).expect("write federation config");
        let federation = Federation::spawn(
            &fed,
            Path::new(env!("CARGO_BIN_EXE_qad")),
            config_path.to_str().expect("utf-8 path"),
            None,
        )
        .expect("spawn 2-node federation");

        let telemetry = Telemetry::disabled();
        // First session: connect, then disconnect without Shutdown — the
        // same thing the servers see when a driver crashes.
        let first = federation.connect(&telemetry).expect("first connect");
        first.disconnect();
        drop(first);

        // Second session: the servers are still there and still answer.
        let second = federation.connect(&telemetry).expect("reconnect");
        let prices = collect_prices(&second, Duration::from_secs(10));
        assert!(
            prices.iter().all(|p| p.is_some()),
            "both nodes answer after a driver reconnect"
        );
        second.shutdown();
        assert!(federation.wait(), "clean exit after the second session");
    });
}
