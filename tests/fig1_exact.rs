//! The paper's Figure-1 numbers, exactly.
//!
//! Two nodes, N1 (q1: 400 ms, q2: 100 ms) and N2 (q1: 450 ms, q2: 500 ms),
//! demand 2×q1 then 6×q2. The greedy load balancer averages 662.5 ms; the
//! QA allocation averages 431.25 ms; LB's first-period allocation is
//! Pareto-dominated.

use query_markets::economics::{
    dominates, enumerate_solutions, is_pareto_optimal, LinearCapacitySet, QuantityVector, Solution,
    ThroughputPreference,
};

const TIMES: [[u64; 2]; 2] = [[400, 100], [450, 500]];

fn arrivals() -> Vec<usize> {
    let mut v = vec![0, 0];
    v.extend(std::iter::repeat_n(1, 6));
    v
}

fn lb_assignment() -> Vec<usize> {
    let mut load = [0u64; 2];
    arrivals()
        .into_iter()
        .map(|class| {
            let imbalance = |n: usize| {
                let mut l = load;
                l[n] += TIMES[n][class];
                l[0].abs_diff(l[1])
            };
            let node = if imbalance(0) <= imbalance(1) { 0 } else { 1 };
            load[node] += TIMES[node][class];
            node
        })
        .collect()
}

fn response_times(assignment: &[usize]) -> Vec<u64> {
    let mut busy = [0u64; 2];
    arrivals()
        .iter()
        .zip(assignment)
        .map(|(&class, &node)| {
            busy[node] += TIMES[node][class];
            busy[node]
        })
        .collect()
}

fn mean(v: &[u64]) -> f64 {
    v.iter().sum::<u64>() as f64 / v.len() as f64
}

#[test]
fn lb_average_is_662_5_ms() {
    let resp = response_times(&lb_assignment());
    assert!((mean(&resp) - 662.5).abs() < 1e-9, "{resp:?}");
    // The paper's per-node end times: N1 busy to 900 ms, N2 to 950 ms.
    assert_eq!(resp.iter().max(), Some(&950));
}

#[test]
fn qa_average_is_431_25_ms() {
    // QA: N1 takes only q2, N2 takes the q1s.
    let qa: Vec<usize> = arrivals()
        .into_iter()
        .map(|class| if class == 0 { 1 } else { 0 })
        .collect();
    let resp = response_times(&qa);
    assert!((mean(&resp) - 431.25).abs() < 1e-9, "{resp:?}");
    // QA leaves N1 idle after 600 ms (the paper's overload-duration
    // point): the six q2 responses are the last six entries.
    assert!(
        resp[2..].iter().all(|&t| t <= 600),
        "all six q2 done by 600 ms: {resp:?}"
    );
}

#[test]
fn lb_is_54_percent_slower() {
    let lb = mean(&response_times(&lb_assignment()));
    let qa = 431.25;
    let pct = 100.0 * (lb / qa - 1.0);
    assert!(
        (pct - 53.6).abs() < 1.0,
        "LB slower by {pct:.1}% (paper: 54%)"
    );
}

#[test]
fn first_period_lb_dominated_qa_optimal() {
    // §2.2: within the first T = 500 ms, demand is d1 = (1,6), d2 = (1,0).
    let sets = vec![
        LinearCapacitySet::new(vec![Some(400.0), Some(100.0)], 500.0),
        LinearCapacitySet::new(vec![Some(450.0), Some(500.0)], 500.0),
    ];
    let demands = vec![
        QuantityVector::from_counts(vec![1, 6]),
        QuantityVector::from_counts(vec![1, 0]),
    ];
    let lb = Solution {
        supplies: vec![
            QuantityVector::from_counts(vec![1, 1]),
            QuantityVector::from_counts(vec![1, 0]),
        ],
        consumptions: vec![
            QuantityVector::from_counts(vec![1, 1]),
            QuantityVector::from_counts(vec![1, 0]),
        ],
    };
    let qa = Solution {
        supplies: vec![
            QuantityVector::from_counts(vec![0, 5]),
            QuantityVector::from_counts(vec![1, 0]),
        ],
        consumptions: vec![
            QuantityVector::from_counts(vec![0, 5]),
            QuantityVector::from_counts(vec![1, 0]),
        ],
    };
    let prefs = vec![ThroughputPreference, ThroughputPreference];
    assert!(dominates(&qa, &lb, &prefs));
    let all = enumerate_solutions(&sets, &demands);
    assert!(
        !is_pareto_optimal(&lb, &all, &prefs),
        "LB is not Pareto optimal"
    );
    assert!(is_pareto_optimal(&qa, &all, &prefs), "QA is Pareto optimal");
}
