//! qa-net codec error paths, end to end.
//!
//! A peer that completes the handshake and then misbehaves — sends a
//! mangled frame, or simply never answers — must surface through the
//! transport as typed errors and prompt receiver disconnects, never as a
//! hang that waits out the idle-death timer or the pending-reply TTL.

use query_markets::cluster::{ClusterError, TcpTransport, Transport};
use query_markets::net::{
    recv_msg, send_msg, write_frame, ConnConfig, NetError, WireMsg, MAX_FRAME,
};
use query_markets::simnet::telemetry::Telemetry;
use query_markets::simnet::with_watchdog;
use std::error::Error as _;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// What the fake server does after completing a valid handshake.
enum Misbehaviour {
    /// Answer the first request frame with a frame whose payload starts
    /// with an unknown message tag, then hold the socket open.
    MangledFrame,
    /// Read requests forever, never replying, socket held open.
    NeverReply,
}

/// A minimal `qad` impostor: accepts one connection, completes a real
/// handshake (Hello in, HelloAck out), then misbehaves as told. Holds
/// the socket open afterwards so nothing but the misbehaviour itself can
/// kill the connection.
fn fake_server(mis: Misbehaviour) -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut stream = stream;
        serve(&mut stream, mis);
    });
    (addr, handle)
}

fn serve(stream: &mut TcpStream, mis: Misbehaviour) {
    match recv_msg(stream, MAX_FRAME) {
        Ok(WireMsg::Hello { .. }) => {}
        other => panic!("fake server: expected hello, got {other:?}"),
    }
    send_msg(stream, &WireMsg::HelloAck { node: 0 }).expect("hello_ack");
    loop {
        let msg = match recv_msg(stream, MAX_FRAME) {
            Ok(m) => m,
            // Client tore the connection down; our job is done.
            Err(_) => return,
        };
        match (&mis, msg) {
            // Pings keep the client's idle deadline satisfied: the only
            // way the connection may die in these tests is the codec
            // error or a deliberate local disconnect.
            (_, WireMsg::Ping { nonce }) => {
                if send_msg(stream, &WireMsg::Pong { nonce }).is_err() {
                    return;
                }
            }
            (Misbehaviour::MangledFrame, _) => {
                // A syntactically valid frame (honest length prefix)
                // whose payload starts with a tag no protocol version
                // has ever assigned.
                write_frame(stream, &[0xFE, 1, 2, 3]).expect("mangled frame");
                let _ = stream.flush();
                // Hold the socket open; drain until the client closes.
            }
            (Misbehaviour::NeverReply, _) => {}
        }
    }
}

fn connect(addr: &str) -> TcpTransport {
    let cfg = ConnConfig::default();
    TcpTransport::connect(&[addr.to_string()], &cfg, &Telemetry::disabled()).expect("connect")
}

#[test]
fn mangled_frame_fails_fast_with_typed_source_chain() {
    with_watchdog("mangled frame surfaces as ClusterError::Net", 60, || {
        let (addr, server) = fake_server(Misbehaviour::MangledFrame);
        let transport = connect(&addr);

        let (tx, rx) = mpsc::channel();
        transport.estimate(0, "SELECT 1", tx).expect("send ok");

        // The mangled reply must kill the connection and disconnect the
        // parked receiver well before the 15 s idle-death deadline (the
        // server answers pings, so idle death cannot fire here at all).
        let start = Instant::now();
        let got = rx.recv_timeout(Duration::from_secs(10));
        assert!(got.is_err(), "no valid reply can exist: {got:?}");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "receiver must disconnect promptly, not time out"
        );

        // The connection is now dead: a follow-up request errors
        // immediately and the error is typed all the way down.
        let (tx2, _rx2) = mpsc::channel();
        let err = transport
            .estimate(0, "SELECT 2", tx2)
            .expect_err("connection must be dead");
        match &err {
            ClusterError::Net {
                phase,
                node,
                source,
                ..
            } => {
                assert_eq!(*phase, "estimate");
                assert_eq!(*node, 0);
                assert_eq!(*source, NetError::PeerClosed);
            }
            other => panic!("expected ClusterError::Net, got {other}"),
        }
        // `source()` chaining stays intact through the cluster layer.
        let chained = err.source().expect("Net must expose its NetError");
        assert_eq!(chained.to_string(), NetError::PeerClosed.to_string());

        transport.disconnect();
        server.join().expect("fake server exits");
    });
}

#[test]
fn codec_errors_chain_through_cluster_error_source() {
    // Unit-level companion to the e2e path above: a decode failure keeps
    // its full chain, ClusterError::Net -> NetError::Codec -> CodecError.
    let decode_err = WireMsg::decode(&[0xFE, 1, 2, 3]).expect_err("unknown tag must not decode");
    let err = ClusterError::net("estimate", 0, "127.0.0.1:1", decode_err.into());
    let net = err.source().expect("cluster error exposes net error");
    assert!(net.to_string().contains("codec error"), "{net}");
    let codec = net.source().expect("net error exposes codec error");
    assert!(codec.to_string().contains("unknown message tag"), "{codec}");
    assert!(codec.to_string().contains("0xfe"), "{codec}");
}

#[test]
fn disconnect_fails_pending_requests_immediately() {
    with_watchdog("disconnect fails pending requests", 60, || {
        let (addr, server) = fake_server(Misbehaviour::NeverReply);
        let transport = connect(&addr);

        let (tx, rx) = mpsc::channel();
        transport.estimate(0, "SELECT 1", tx).expect("send ok");
        // Give the request time to actually reach the server, so the
        // pending slot is genuinely outstanding when we disconnect.
        std::thread::sleep(Duration::from_millis(50));

        let start = Instant::now();
        transport.disconnect();
        // Regression: the pending map must be failed on disconnect, not
        // aged out by the TTL sweep — the waiter observes dead-peer
        // semantics (disconnected receiver) right away.
        let got = rx.recv_timeout(Duration::from_secs(5));
        assert!(
            matches!(got, Err(mpsc::RecvTimeoutError::Disconnected)),
            "pending reply must be failed by disconnect, got {got:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "disconnect must fail waiters immediately"
        );
        server.join().expect("fake server exits");
    });
}
