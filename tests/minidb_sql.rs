//! End-to-end SQL correctness on the embedded engine, including the query
//! shapes the cluster experiment runs.

use query_markets::minidb::plan::optimizer::OptimizerConfig;
use query_markets::minidb::{Database, Value};

fn warehouse() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE orders (id INT, cust INT, amount FLOAT, region TEXT)")
        .unwrap();
    db.execute("CREATE TABLE customers (id INT, name TEXT, tier INT)")
        .unwrap();
    db.execute("CREATE TABLE regions (name TEXT, manager TEXT)")
        .unwrap();
    for i in 0..200 {
        db.execute(&format!(
            "INSERT INTO orders VALUES ({i}, {}, {}.5, '{}')",
            i % 20,
            (i * 7) % 100,
            if i % 3 == 0 { "east" } else { "west" }
        ))
        .unwrap();
    }
    for c in 0..20 {
        db.execute(&format!(
            "INSERT INTO customers VALUES ({c}, 'cust{c}', {})",
            c % 3
        ))
        .unwrap();
    }
    db.execute("INSERT INTO regions VALUES ('east', 'alice'), ('west', 'bob')")
        .unwrap();
    db
}

#[test]
fn three_way_join_with_aggregation() {
    let db = warehouse();
    let r = db
        .query(
            "SELECT r.manager, COUNT(*) AS n, SUM(o.amount) AS total \
             FROM orders AS o \
             JOIN customers AS c ON o.cust = c.id \
             JOIN regions AS r ON o.region = r.name \
             WHERE c.tier >= 1 \
             GROUP BY r.manager ORDER BY r.manager",
        )
        .unwrap();
    assert_eq!(r.columns, vec!["manager", "n", "total"]);
    assert_eq!(r.rows.len(), 2);
    // Hand check: tiers 1 and 2 are custs where c % 3 != 0 → 13 of 20
    // customers; each cust has 10 orders; regions split by i % 3.
    let total_n: i64 = r
        .rows
        .iter()
        .map(|row| match row[1] {
            Value::Int(n) => n,
            _ => panic!(),
        })
        .sum();
    assert_eq!(total_n, 130);
}

#[test]
fn same_results_under_all_join_strategies() {
    let sql = "SELECT o.id, c.name FROM orders AS o JOIN customers AS c ON o.cust = c.id \
               WHERE o.amount > 50.0 ORDER BY o.id";
    let hash_db = warehouse();
    let hash = hash_db.query(sql).unwrap();

    // Rebuild the same data on an engine without hash join.
    let mut merge_db = Database::with_config(OptimizerConfig {
        enable_hash_join: false,
    });
    for stmt in [
        "CREATE TABLE orders (id INT, cust INT, amount FLOAT, region TEXT)",
        "CREATE TABLE customers (id INT, name TEXT, tier INT)",
    ] {
        merge_db.execute(stmt).unwrap();
    }
    for i in 0..200 {
        merge_db
            .execute(&format!(
                "INSERT INTO orders VALUES ({i}, {}, {}.5, '{}')",
                i % 20,
                (i * 7) % 100,
                if i % 3 == 0 { "east" } else { "west" }
            ))
            .unwrap();
    }
    for c in 0..20 {
        merge_db
            .execute(&format!(
                "INSERT INTO customers VALUES ({c}, 'cust{c}', {})",
                c % 3
            ))
            .unwrap();
    }
    let merge = merge_db.query(sql).unwrap();
    assert!(merge_db.explain(sql).unwrap().text.contains("MergeJoin"));
    assert!(hash_db.explain(sql).unwrap().text.contains("HashJoin"));
    assert_eq!(hash.rows, merge.rows);
}

#[test]
fn views_compose_with_joins() {
    let mut db = warehouse();
    db.execute("CREATE VIEW big_orders AS SELECT id, cust, amount FROM orders WHERE amount > 80.0")
        .unwrap();
    let r = db
        .query(
            "SELECT c.name, COUNT(*) FROM big_orders AS b JOIN customers AS c \
             ON b.cust = c.id GROUP BY c.name ORDER BY c.name",
        )
        .unwrap();
    assert!(!r.rows.is_empty());
    // Every counted order really is > 80.
    let direct = db
        .query("SELECT COUNT(*) FROM orders WHERE amount > 80.0")
        .unwrap();
    let via_view: i64 = r
        .rows
        .iter()
        .map(|row| match row[1] {
            Value::Int(n) => n,
            _ => panic!(),
        })
        .sum();
    assert_eq!(direct.rows[0][0], Value::Int(via_view));
}

#[test]
fn explain_estimates_shrink_with_selectivity() {
    let db = warehouse();
    let all = db.explain("SELECT * FROM orders").unwrap();
    let some = db.explain("SELECT * FROM orders WHERE cust = 3").unwrap();
    assert!(some.root.rows < all.root.rows);
    assert_ne!(all.fingerprint, some.fingerprint);
}

#[test]
fn fingerprints_group_query_templates() {
    let db = warehouse();
    let f = |c: i64| {
        db.explain(&format!("SELECT * FROM orders WHERE cust = {c}"))
            .unwrap()
            .fingerprint
    };
    assert_eq!(f(1), f(19));
    let other = db
        .explain("SELECT * FROM orders WHERE amount = 1.0")
        .unwrap()
        .fingerprint;
    assert_ne!(f(1), other);
}

#[test]
fn error_paths_are_graceful() {
    let db = warehouse();
    assert!(db.query("SELECT * FROM missing").is_err());
    assert!(db.query("SELECT amount + region FROM orders").is_err());
    assert!(db.query("SELECT nope FROM orders").is_err());
    assert!(db.query("SELECT region, SUM(amount) FROM orders").is_err()); // missing GROUP BY
    assert!(db
        .query("SELECT COUNT(*) FROM orders WHERE amount / 0.0 > 1.0")
        .is_err());
}

#[test]
fn order_by_limit_pagination() {
    let db = warehouse();
    let page1 = db
        .query("SELECT id FROM orders ORDER BY amount DESC, id ASC LIMIT 5")
        .unwrap();
    assert_eq!(page1.rows.len(), 5);
    // Deterministic: run twice, same page.
    let again = db
        .query("SELECT id FROM orders ORDER BY amount DESC, id ASC LIMIT 5")
        .unwrap();
    assert_eq!(page1.rows, again.rows);
}
