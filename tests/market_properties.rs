//! Cross-crate market properties: the economics substrate and the QA-NT
//! node agree on the paper's §3.3 narrative.

use query_markets::core::{QantConfig, QantNode};
use query_markets::economics::{
    check_ftwe, is_equilibrium, FtweCheck, LinearCapacitySet, QuantityVector, Tatonnement,
};
use query_markets::simnet::DetRng;
use query_markets::workload::ClassId;

/// The paper's two sellers.
fn sellers() -> Vec<LinearCapacitySet> {
    vec![
        LinearCapacitySet::new(vec![Some(400.0), Some(100.0)], 500.0),
        LinearCapacitySet::new(vec![Some(450.0), Some(500.0)], 500.0),
    ]
}

fn qv(v: &[u64]) -> QuantityVector {
    QuantityVector::from_counts(v.to_vec())
}

#[test]
fn ftwe_holds_on_the_paper_economy() {
    let demands = vec![qv(&[0, 5]), qv(&[1, 0])];
    match check_ftwe(&sellers(), &demands, &Tatonnement::default()) {
        FtweCheck::Holds { solution } => {
            assert!(is_equilibrium(&demands, &solution.supplies));
        }
        other => panic!("FTWE should hold: {other:?}"),
    }
}

#[test]
fn qant_walkthrough_of_section_3_3() {
    // "assume that equilibrium prices are initially p⃗* = (1, 1). By
    // solving (4), node N1 will supply only q2 queries."
    let mut n1 = QantNode::new(2, QantConfig::default());
    n1.begin_period(&[Some(400.0), Some(100.0)], None);
    assert_eq!(n1.supply().unwrap().as_slice(), &[0, 5]);

    // "Assume now that query distribution is modified and demand for
    // queries q1 cannot be satisfied. Then, prices of q1 queries will
    // start increasing until node N1 starts to also supply q1."
    let mut periods = 0;
    loop {
        let _ = n1.on_request(ClassId(0)); // unmet q1 demand each period
        n1.end_period();
        n1.begin_period(&[Some(400.0), Some(100.0)], None);
        periods += 1;
        if n1.supply().unwrap().get(0) > 0 {
            break;
        }
        assert!(periods < 200, "price never rose enough: {}", n1.prices());
    }
    assert!(n1.supply().unwrap().get(0) >= 1);
}

#[test]
fn jittered_nodes_specialize_differently() {
    // Identical hardware, identical event streams — but jittered initial
    // prices make the population split instead of moving in lockstep.
    let mut rng = DetRng::seed_from_u64(99);
    let nodes: Vec<QantNode> = (0..32)
        .map(|_| {
            let mut n = QantNode::with_jitter(2, QantConfig::default(), &mut rng);
            n.begin_period(&[Some(400.0), Some(100.0)], None);
            n
        })
        .collect();
    let q1_suppliers = nodes
        .iter()
        .filter(|n| n.supply().unwrap().get(0) > 0)
        .count();
    // With σ = 1.5 the q1-vs-q2 density flip (at p1 = 4·p2) is within the
    // jitter band for a meaningful minority of nodes.
    assert!(q1_suppliers > 0, "some node should start in q1 mode");
    assert!(
        q1_suppliers < nodes.len(),
        "and some node should start in q2 mode"
    );
}

#[test]
fn prices_stay_private_to_the_node() {
    // There is no API through which a remote party could read another
    // node's prices out of the allocation protocol: messages carry only
    // ids and durations. This is a compile-time guarantee; here we merely
    // document the runtime surface — the offer derives from supply, never
    // exposes the price.
    let mut n = QantNode::new(1, QantConfig::default());
    n.begin_period(&[Some(100.0)], None);
    let offered = n.on_request(ClassId(0));
    assert!(offered);
    // The only observable effects are boolean offers and supply counts.
    assert!(n.supply().unwrap().get(0) > 0);
}

#[test]
fn tatonnement_and_qant_agree_on_scarcity_pricing() {
    // Both the centralized umpire and the decentralized node raise the
    // price of the class in excess demand.
    let t = Tatonnement {
        max_iterations: 200,
        ..Tatonnement::default()
    };
    let run = t.run(
        &qv(&[2, 2]),
        &sellers(),
        query_markets::economics::PriceVector::uniform(2, 1.0),
    );
    assert!(
        run.prices.get(0) > 1.0,
        "umpire bids up scarce q1: {}",
        run.prices
    );

    let mut n = QantNode::new(2, QantConfig::default());
    n.begin_period(&[Some(400.0), Some(100.0)], None);
    let before = n.prices().get(0);
    let _ = n.on_request(ClassId(0)); // rejected: no q1 supply at (1,1)
    assert!(n.prices().get(0) > before, "node bids up scarce q1");
}
