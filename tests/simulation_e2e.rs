//! End-to-end simulator checks: determinism, conservation, and the
//! qualitative shape of the paper's figures at test scale.

use query_markets::core::MechanismKind;
use query_markets::prelude::*;
use query_markets::sim::experiments::{
    fig3_sinusoid_workload, fig4_all_algorithms, fig5c_tracking, two_class_trace,
};

fn scenario(nodes: usize, seed: u64) -> Scenario {
    let mut config = SimConfig::small_test(seed);
    config.num_nodes = nodes;
    Scenario::two_class(config, TwoClassParams::default())
}

#[test]
fn every_query_is_accounted_for() {
    let s = scenario(15, 3);
    let trace = two_class_trace(&s, 0.05, 1.0, 25);
    for m in MechanismKind::DYNAMIC {
        let out = Federation::new(&s, m, &trace).run(&trace);
        assert_eq!(
            out.metrics.completed + out.metrics.unserved,
            trace.len() as u64,
            "{m}: conservation violated"
        );
    }
}

#[test]
fn identical_seeds_identical_results() {
    let s = scenario(12, 9);
    let trace = two_class_trace(&s, 0.05, 0.7, 20);
    for m in [
        MechanismKind::QaNt,
        MechanismKind::TwoProbes,
        MechanismKind::Random,
    ] {
        let a = Federation::new(&s, m, &trace).run(&trace);
        let b = Federation::new(&s, m, &trace).run(&trace);
        assert_eq!(
            a.metrics.mean_response_ms(),
            b.metrics.mean_response_ms(),
            "{m}"
        );
        assert_eq!(a.metrics.messages, b.metrics.messages, "{m}");
        assert_eq!(
            a.metrics.executed_per_period(),
            b.metrics.executed_per_period(),
            "{m}"
        );
    }
}

#[test]
fn different_seeds_different_worlds() {
    let a = scenario(12, 1);
    let b = scenario(12, 2);
    assert_ne!(a.exec_times_ms, b.exec_times_ms);
}

#[test]
fn fig4_shape_load_balancers_lose() {
    let config = SimConfig::small_test(2007);
    let r = fig4_all_algorithms(&config, 25);
    let by_name = |n: &str| {
        r.rows
            .iter()
            .find(|x| x.mechanism == n)
            .unwrap_or_else(|| panic!("{n} missing"))
    };
    // The paper's ordering: QA-NT and Greedy "substantially better than
    // the load balancing ones"; random/round-robin worst.
    let qant = by_name("QA-NT").normalized_response;
    let greedy = by_name("Greedy").normalized_response;
    let random = by_name("Random").normalized_response;
    let rr = by_name("Round-robin").normalized_response;
    assert!((qant - 1.0).abs() < 1e-9);
    assert!(greedy < 1.5, "greedy competitive, got {greedy}");
    assert!(random > 1.5, "random should lose clearly, got {random}");
    assert!(rr > 1.5, "round-robin should lose clearly, got {rr}");
}

#[test]
fn fig3_is_periodic_and_phase_shifted() {
    let r = fig3_sinusoid_workload(&SimConfig::small_test(2007), 0.05, 0.8, 40);
    // Peaks of Q1 and troughs of Q1 differ strongly over a 20 s cycle.
    let max = *r.q1_per_period.iter().max().unwrap();
    let min = *r.q1_per_period.iter().min().unwrap();
    assert!(max >= min + 3, "waveform too flat: {max} vs {min}");
    // Q2 exists and is smaller in total.
    let q1: u64 = r.q1_per_period.iter().sum();
    let q2: u64 = r.q2_per_period.iter().sum();
    assert!(q1 > q2);
}

#[test]
fn fig5c_execution_tracks_arrivals_within_capacity() {
    let r = fig5c_tracking(&SimConfig::small_test(2007), 20);
    let arrived: u64 = r.arrivals_q1.iter().sum();
    let qant: u64 = r.executed_q1_qant.iter().sum();
    let greedy: u64 = r.executed_q1_greedy.iter().sum();
    assert!(qant <= arrived && greedy <= arrived);
    assert!(qant > 0 && greedy > 0);
}

#[test]
fn markov_handles_static_workload_well() {
    // On a *static* (constant-rate) workload the Markov allocator should
    // be competitive with Greedy — the Table-2 "Excellent (static)" row.
    let s = scenario(15, 5);
    // Constant-rate arrivals: use a high-frequency sinusoid whose period
    // is far below the averaging horizon, at moderate load.
    let trace = two_class_trace(&s, 2.0, 0.6, 30);
    let markov = Federation::new(&s, MechanismKind::Markov, &trace).run(&trace);
    let random = Federation::new(&s, MechanismKind::Random, &trace).run(&trace);
    let m = markov.metrics.mean_response_ms().unwrap();
    let r = random.metrics.mean_response_ms().unwrap();
    assert!(
        m < r,
        "markov ({m:.0}ms) should beat random ({r:.0}ms) on a static load"
    );
}

#[test]
fn overload_shape_qant_beats_greedy() {
    // The headline: under sustained heavy overload QA-NT's market
    // outperforms greedy assignment (paper Fig. 5a right side).
    let s = scenario(30, 11);
    let trace = two_class_trace(&s, 0.05, 2.5, 40);
    let q = Federation::new(&s, MechanismKind::QaNt, &trace).run(&trace);
    let g = Federation::new(&s, MechanismKind::Greedy, &trace).run(&trace);
    let qm = q.metrics.mean_response_ms().unwrap();
    let gm = g.metrics.mean_response_ms().unwrap();
    assert!(
        qm < gm * 1.05,
        "QA-NT ({qm:.0}ms) should be at least competitive with Greedy ({gm:.0}ms) at 2.5x"
    );
}

#[test]
fn assignment_latency_reflects_protocol_weight() {
    let s = scenario(15, 13);
    let trace = two_class_trace(&s, 0.05, 0.5, 15);
    let qant = Federation::new(&s, MechanismKind::QaNt, &trace).run(&trace);
    let random = Federation::new(&s, MechanismKind::Random, &trace).run(&trace);
    let q = qant.metrics.assign_latency.mean().unwrap();
    let r = random.metrics.assign_latency.mean().unwrap();
    assert!(
        q > r,
        "negotiation ({q:.3}ms) costs more than direct send ({r:.3}ms)"
    );
}

#[test]
fn partial_market_deployment_is_supported() {
    // §4: QA-NT still works when only a subset of nodes runs it.
    let s = scenario(12, 17);
    let trace = two_class_trace(&s, 0.05, 1.2, 20);
    let mut fed = Federation::new(&s, MechanismKind::QaNt, &trace);
    fed.restrict_market_to(|n| n.0 % 2 == 0); // half the fleet participates
    let out = fed.run(&trace);
    assert_eq!(
        out.metrics.completed + out.metrics.unserved,
        trace.len() as u64
    );
    assert!(out.metrics.completed > 0);
}

#[test]
#[should_panic(expected = "QA-NT only")]
fn partial_deployment_rejected_for_other_mechanisms() {
    let s = scenario(6, 18);
    let trace = two_class_trace(&s, 0.05, 0.5, 5);
    let mut fed = Federation::new(&s, MechanismKind::Greedy, &trace);
    fed.restrict_market_to(|_| true);
}

#[test]
fn fairness_metric_is_populated_by_runs() {
    let s = scenario(12, 19);
    let trace = two_class_trace(&s, 0.05, 0.8, 15);
    let out = Federation::new(&s, MechanismKind::QaNt, &trace).run(&trace);
    let j = out
        .metrics
        .origin_fairness()
        .expect("many origins completed");
    assert!((0.0..=1.0 + 1e-9).contains(&j));
    assert!(j > 0.5, "origins should be treated comparably: {j}");
}
