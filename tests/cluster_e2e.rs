//! End-to-end checks of the threaded deployment (§5.2 at CI scale).
//!
//! Every run sits behind the shared [`with_watchdog`] helper
//! (`QA_TEST_TIMEOUT_SECS` overrides the bound): a wedged fleet must
//! fail the suite loudly, not hang it.

use query_markets::cluster::{run_experiment, ClusterConfig, ClusterMechanism, ClusterSpec};
use query_markets::simnet::with_watchdog;
use query_markets::workload::ClassId;

fn spec() -> ClusterSpec {
    ClusterSpec::generate(31, 5, 8, 12, 6, 60)
}

#[test]
fn greedy_and_qant_both_finish_the_workload() {
    with_watchdog("both mechanisms finish workload", 180, || {
        let s = spec();
        for mech in [ClusterMechanism::Greedy, ClusterMechanism::QaNt] {
            let mut cfg = ClusterConfig::ci_scale(mech, 4);
            cfg.num_queries = 25;
            let r = run_experiment(&s, &cfg).expect("spec has evaluable classes");
            assert_eq!(r.outcomes.len(), 25, "{mech}");
            assert_eq!(
                r.failed,
                0,
                "{mech}: {:?}",
                r.outcomes.iter().find(|o| o.error.is_some())
            );
            assert!(r.mean_total_ms >= r.mean_assign_ms, "{mech}");
            assert!(r.mean_assign_ms > 0.0, "{mech}");
        }
    });
}

#[test]
fn queries_only_land_on_nodes_with_the_data() {
    with_watchdog("placement respects data copies", 120, || {
        let s = spec();
        let mut cfg = ClusterConfig::ci_scale(ClusterMechanism::QaNt, 5);
        cfg.num_queries = 20;
        let r = run_experiment(&s, &cfg).expect("spec has evaluable classes");
        for o in &r.outcomes {
            if let Some(n) = o.node {
                assert!(
                    s.capable_nodes(ClassId(o.class)).contains(&n),
                    "query {} of class {} landed on incapable node {n}",
                    o.query,
                    o.class
                );
            }
        }
    });
}

#[test]
fn results_are_correct_wherever_executed() {
    // Replicas are identical, so the same query must return the same row
    // count on every capable node — verified directly against fresh
    // engines outside the cluster.
    let s = spec();
    let class = &s.classes[0];
    let capable = s.capable_nodes(class.id);
    assert!(!capable.is_empty());
    let sql = class.instantiate(42);
    let mut counts = Vec::new();
    for &node in &capable {
        let mut db = query_markets::minidb::Database::new();
        for stmt in s.node_statements(node) {
            db.execute(&stmt).unwrap();
        }
        for t in &s.tables {
            if t.copies.contains(&node) {
                db.load_rows(&t.name, s.table_rows(t, 4)).unwrap();
            }
        }
        counts.push(db.query(&sql).unwrap().rows.len());
    }
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
}

#[test]
fn slow_node_attracts_less_work_under_both_mechanisms() {
    with_watchdog("slow node attracts less work", 180, || {
        let s = spec();
        // Node with the largest slowdown.
        let slowest = (0..s.num_nodes)
            .max_by(|&a, &b| s.slowdown[a].partial_cmp(&s.slowdown[b]).unwrap())
            .unwrap();
        for mech in [ClusterMechanism::Greedy, ClusterMechanism::QaNt] {
            let mut cfg = ClusterConfig::ci_scale(mech, 6);
            cfg.num_queries = 40;
            let r = run_experiment(&s, &cfg).expect("spec has evaluable classes");
            let mut per_node = vec![0usize; s.num_nodes];
            for o in r.outcomes.iter().filter(|o| o.error.is_none()) {
                if let Some(n) = o.node {
                    per_node[n] += 1;
                }
            }
            let total: usize = per_node.iter().sum();
            assert!(
                per_node[slowest] * 3 <= total,
                "{mech}: slowest node {slowest} did {}/{} queries: {per_node:?}",
                per_node[slowest],
                total
            );
        }
    });
}
