//! End-to-end telemetry contracts across the stack:
//!
//! * the trace-dump JSONL is **byte-deterministic** — two runs of the
//!   same spec produce identical bytes (sim-time clock + seeded
//!   randomness; no wall-clock leaks into the event stream),
//! * every emitted line survives the strict parser and re-dumps to the
//!   exact input bytes (the canonical-form contract `check_trace`
//!   enforces in CI),
//! * observation is passive — enabling telemetry does not change what
//!   the simulation computes,
//! * the cluster driver emits the same wire schema from real threads.

use qa_sim::{run_trace_dump, TraceDumpSpec};
use qa_simnet::json::ToJson;
use qa_simnet::telemetry::{TelemetryEvent, TraceRecord};

#[test]
fn trace_dump_is_byte_deterministic() {
    let spec = TraceDumpSpec::ci(2007);
    let a = run_trace_dump(&spec);
    let b = run_trace_dump(&spec);
    assert!(!a.jsonl.is_empty());
    assert_eq!(
        a.jsonl, b.jsonl,
        "same-seed trace dumps must be byte-identical"
    );
    // The convergence report is a pure function of the records, so it
    // agrees too.
    assert_eq!(a.report.to_json().dump(), b.report.to_json().dump());

    // A different seed must actually change the trace (the determinism
    // above is not vacuous).
    let c = run_trace_dump(&TraceDumpSpec::ci(2008));
    assert_ne!(a.jsonl, c.jsonl, "seed must steer the trace");
}

#[test]
fn trace_dump_lines_are_canonical_jsonl() {
    let dump = run_trace_dump(&TraceDumpSpec::ci(11));
    assert_eq!(dump.jsonl.lines().count(), dump.records.len());
    let mut last_t = 0u64;
    for (line, record) in dump.jsonl.lines().zip(&dump.records) {
        let parsed = TraceRecord::parse_line(line).expect("strict parse of emitted line");
        assert_eq!(parsed, *record);
        assert_eq!(
            parsed.to_json().dump(),
            line,
            "re-dump must reproduce the emitted bytes"
        );
        assert!(parsed.t_us >= last_t, "timestamps must be monotone");
        last_t = parsed.t_us;
    }
}

#[test]
fn observation_does_not_perturb_the_simulation() {
    use qa_core::MechanismKind;
    use qa_sim::federation::Federation;
    use qa_sim::scenario::{Scenario, TwoClassParams};
    use qa_sim::SimConfig;
    use qa_simnet::telemetry::Telemetry;

    let scenario = Scenario::two_class(SimConfig::small_test(5), TwoClassParams::default());
    let trace = qa_sim::experiments::two_class_trace(&scenario, 0.05, 0.8, 10);
    let silent = Federation::new(&scenario, MechanismKind::QaNt, &trace).run(&trace);
    let (telemetry, _buffer) = Telemetry::buffered();
    let observed =
        Federation::with_telemetry(&scenario, MechanismKind::QaNt, &trace, telemetry).run(&trace);
    assert_eq!(silent.metrics.completed, observed.metrics.completed);
    assert_eq!(silent.metrics.unserved, observed.metrics.unserved);
    assert_eq!(silent.metrics.messages, observed.metrics.messages);
    assert_eq!(
        silent.metrics.mean_response_ms(),
        observed.metrics.mean_response_ms()
    );
}

#[test]
fn cluster_trace_speaks_the_same_wire_schema() {
    use qa_cluster::{run_experiment, ClusterConfig, ClusterMechanism, ClusterSpec};
    use qa_simnet::telemetry::Telemetry;

    let spec = ClusterSpec::generate(4, 4, 6, 10, 5, 60);
    let mut cfg = ClusterConfig::ci_scale(ClusterMechanism::QaNt, 31);
    cfg.num_queries = 12;
    let (telemetry, buffer) = Telemetry::buffered();
    cfg.telemetry = telemetry;
    run_experiment(&spec, &cfg).expect("healthy spec");

    let records = buffer.records();
    assert!(!records.is_empty());
    for record in &records {
        let line = record.to_json().dump();
        let parsed = TraceRecord::parse_line(&line).expect("cluster line parses strictly");
        assert_eq!(parsed, *record);
    }
    // Market activity from node threads made it into the shared buffer.
    assert!(records
        .iter()
        .any(|r| matches!(r.event, TelemetryEvent::SupplyComputed { .. })));
    assert!(records
        .iter()
        .any(|r| matches!(r.event, TelemetryEvent::QueryCompleted { .. })));
}
