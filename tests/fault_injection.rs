//! Fault-injection end-to-end: lossy links and mid-run crashes against
//! both the §5.1 simulator and the §5.2 threaded cluster.
//!
//! The invariants under test:
//! * **liveness** — faulty runs terminate (watchdog-bounded), they never
//!   deadlock waiting for messages that will not come;
//! * **conservation** — every arrival is eventually completed or counted
//!   unserved, crashes included;
//! * **service** — QA-NT rides out 10% message loss plus a crash with at
//!   least 95% completion;
//! * **reproducibility** — same seed + same [`FaultPlan`] gives the same
//!   run, a different fault seed gives a different loss realization.

use query_markets::cluster::{run_experiment, ClusterConfig, ClusterMechanism, ClusterSpec};
use query_markets::prelude::*;
use query_markets::simnet::with_watchdog;
use std::time::Duration;

#[test]
fn sim_qant_survives_lossy_slow_link_and_mid_run_crash() {
    let out = with_watchdog("sim qant under loss and crash", 120, || {
        let config = SimConfig::small_test(2024);
        let scenario = Scenario::two_class(config, TwoClassParams::default());
        let trace = two_class_trace(&scenario, 0.05, 0.5, 20);
        let n = trace.len();
        let mut f = Federation::new(&scenario, MechanismKind::QaNt, &trace);
        // 10% loss fleet-wide, a 40%-lossy "slow wireless" link on node 7,
        // and node 3 dies at t = 8 s with whatever it owned.
        f.set_fault_plan(
            FaultPlan::uniform(LinkFaults::lossy(0.10)).with_link(7, LinkFaults::lossy(0.40)),
        );
        f.kill_node_at(NodeId(3), SimTime::from_secs(8));
        (f.run(&trace), n)
    });
    let (out, n) = out;
    assert_eq!(
        out.metrics.completed + out.metrics.unserved,
        n as u64,
        "conservation: arrivals = completed + unserved"
    );
    assert!(
        out.metrics.completed as f64 >= 0.95 * n as f64,
        "QA-NT must complete ≥95% under loss + crash: {}/{n}",
        out.metrics.completed
    );
    assert!(out.metrics.lost_messages > 0, "faults must actually fire");
    assert!(
        out.metrics.retries > 0,
        "losses surface as §2.2 resubmissions"
    );
}

#[test]
fn sim_fault_runs_reproducible_and_fault_seed_sensitive() {
    let fingerprint = |fault_seed: Option<u64>| {
        let config = SimConfig::small_test(5);
        let scenario = Scenario::two_class(config, TwoClassParams::default());
        let trace = two_class_trace(&scenario, 0.05, 0.5, 12);
        let mut f = Federation::new(&scenario, MechanismKind::QaNt, &trace);
        f.set_fault_plan(FaultPlan::uniform(LinkFaults::lossy(0.2)));
        if let Some(seed) = fault_seed {
            f.set_fault_seed(seed);
        }
        f.kill_node_at(NodeId(1), SimTime::from_secs(4));
        let out = f.run(&trace);
        (
            out.metrics.completed,
            out.metrics.messages,
            out.metrics.lost_messages,
            out.metrics.retries,
            out.metrics.mean_response_ms(),
        )
    };
    let a = fingerprint(None);
    assert_eq!(
        a,
        fingerprint(None),
        "same seed + plan ⇒ identical RunOutcome"
    );
    assert!(a.2 > 0, "losses occurred");
    assert_ne!(
        a,
        fingerprint(Some(0xBEEF)),
        "different fault seed ⇒ different loss realization"
    );
}

#[test]
fn cluster_terminates_cleanly_under_loss_and_crash() {
    // Five nodes, 10% negotiation loss everywhere, one node crashes just
    // after the workload starts. The driver must drop the dead node and
    // finish; queries of classes that only the victim could evaluate are
    // excluded from the service bar (they are correctly *unservable*).
    let spec = ClusterSpec::generate(31, 5, 8, 12, 6, 60);
    // The victim is the node whose loss strands the fewest classes.
    let stranded_by = |victim: usize| -> Vec<u32> {
        spec.classes
            .iter()
            .filter(|c| {
                let cap = spec.capable_nodes(c.id);
                !cap.is_empty() && cap.iter().all(|&m| m == victim)
            })
            .map(|c| c.id.0)
            .collect()
    };
    let victim = (0..spec.num_nodes)
        .min_by_key(|&n| stranded_by(n).len())
        .unwrap_or(0);
    let stranded = stranded_by(victim);

    for mech in [ClusterMechanism::Greedy, ClusterMechanism::QaNt] {
        let spec = spec.clone();
        let stranded = stranded.clone();
        let r = with_watchdog("cluster under loss and crash", 180, move || {
            let mut cfg = ClusterConfig::ci_scale(mech, 8);
            cfg.num_queries = 25;
            cfg.reply_timeout = Duration::from_secs(5);
            cfg.faults = FaultPlan::uniform(LinkFaults::lossy(0.10));
            cfg.crashes = vec![(victim, Duration::from_millis(30))];
            run_experiment(&spec, &cfg).expect("spec has evaluable classes")
        });
        assert_eq!(r.outcomes.len(), 25, "{mech}: every query accounted for");
        let eligible: Vec<_> = r
            .outcomes
            .iter()
            .filter(|o| !stranded.contains(&o.class))
            .collect();
        let ok = eligible.iter().filter(|o| o.error.is_none()).count();
        assert!(
            ok as f64 >= 0.95 * eligible.len() as f64,
            "{mech}: ≥95% of servable queries must complete: {ok}/{}",
            eligible.len()
        );
        // Queries issued well after the crash never land on the victim
        // (index 18 is issued ≥ 47.5 ms in; the crash is marked by ~35 ms).
        for o in r.outcomes.iter().filter(|o| o.query >= 18) {
            if let Some(n) = o.node {
                assert_ne!(n, victim, "{mech}: query {} on crashed node", o.query);
            }
        }
    }
}
