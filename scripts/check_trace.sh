#!/usr/bin/env sh
# Validate the telemetry trace contract end to end: run the seeded
# trace_dump (CI scale unless QA_SCALE says otherwise), then check every
# JSONL line against the strict parser — canonical re-dump byte equality,
# monotone timestamps — and require the full event taxonomy that a seeded
# faulty run must produce (market, query-lifecycle and fault events).
#
# Usage: scripts/check_trace.sh [trace.jsonl]
# With an argument, skips the trace_dump run and validates that file.
set -eu

cd "$(dirname "$0")/.."

REQUIRED="price_adjusted,supply_computed,request_rejected,query_assigned,query_completed,message_dropped,node_crashed,node_recovered,period_started"

if [ "$#" -ge 1 ]; then
    trace="$1"
else
    cargo run -q -p qa-bench --bin trace_dump
    trace="bench_results/trace_dump.jsonl"
fi

cargo run -q -p qa-bench --bin check_trace -- "$trace" --require "$REQUIRED"
