#!/usr/bin/env sh
# End-to-end smoke of the observability plane: build the real bins, then
# exercise every way to observe a federation:
#
#   1. `qa-ctl stats --metrics` — spawn 5 `qad` servers (each with a
#      `/metrics` HTTP listener), scrape their registries over the wire
#      (StatsRequest/StatsReply), merge into a fleet report, and hold the
#      report to the required metric families with `check_metrics`
#      (pre-registered families must be present even on an idle fleet);
#   2. a single live `qad --metrics-addr` — validate the Prometheus text
#      exposition line-by-line plus the 404 route (`check_metrics --fetch`),
#      and attach to it with `qa-ctl stats --addrs` without perturbing it;
#   3. a traced `qa-ctl run` — replay the seeded workload, then analyze
#      the driver trace offline with `qa-trace` (census, span rollups,
#      filter round-trip back through the analyzer).
#
# Usage: scripts/metrics_smoke.sh [workdir]
# The workdir (default: a fresh mktemp dir) keeps every artifact for
# post-mortem; it is left in place on failure.
set -eu

cd "$(dirname "$0")/.."

workdir="${1:-$(mktemp -d "${TMPDIR:-/tmp}/qa-metrics-smoke.XXXXXX")}"
mkdir -p "$workdir"
echo "metrics-smoke: workdir $workdir"

cargo build --release -q --bin qad --bin qa-ctl
cargo build --release -q -p qa-bench --bin check_metrics --bin qa_trace

./target/release/qa-ctl init > "$workdir/fed.json"

# --- 1. fleet scrape over the wire, idle fleet, with /metrics listeners ---
./target/release/qa-ctl stats \
    --config "$workdir/fed.json" \
    --qad ./target/release/qad \
    --metrics \
    > "$workdir/stats.json" 2> "$workdir/stats.log"

grep -q "metrics endpoint http://" "$workdir/stats.log" || {
    echo "metrics-smoke: no metrics endpoints announced" >&2
    cat "$workdir/stats.log" >&2
    exit 1
}

./target/release/check_metrics "$workdir/stats.json" --nodes 5

# Watch mode: two scrape rounds, one compact JSON report per line.
./target/release/qa-ctl stats \
    --config "$workdir/fed.json" \
    --qad ./target/release/qad \
    --watch --rounds 2 --interval-ms 200 \
    > "$workdir/watch.jsonl" 2> /dev/null
[ "$(wc -l < "$workdir/watch.jsonl")" -eq 2 ] || {
    echo "metrics-smoke: --watch --rounds 2 emitted $(wc -l < "$workdir/watch.jsonl") lines, want 2" >&2
    exit 1
}

# --- 2. live exposition endpoint + non-perturbing attach ---
./target/release/qad --listen 127.0.0.1:0 --node-id 0 \
    --config "$workdir/fed.json" --metrics-addr 127.0.0.1:0 \
    > "$workdir/qad.out" 2> "$workdir/qad.err" &
qad_pid=$!
i=0
while ! grep -q "^qad metrics " "$workdir/qad.out" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "metrics-smoke: qad never announced its metrics endpoint" >&2
        cat "$workdir/qad.err" >&2
        kill "$qad_pid" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
listen_addr="$(awk '/^qad listening /{print $3}' "$workdir/qad.out")"
metrics_addr="$(awk '/^qad metrics /{print $3}' "$workdir/qad.out")"

./target/release/check_metrics "$workdir/stats.json" --nodes 5 --fetch "$metrics_addr"

# Attach mode never sends Shutdown: the qad must still be alive after.
./target/release/qa-ctl stats --addrs "$listen_addr" \
    > "$workdir/attach.json" 2> /dev/null
grep -q '"alive": 1' "$workdir/attach.json" || {
    echo "metrics-smoke: attach-mode scrape did not report the node alive" >&2
    cat "$workdir/attach.json" >&2
    exit 1
}
kill -0 "$qad_pid" 2>/dev/null || {
    echo "metrics-smoke: attach-mode scrape killed the observed qad" >&2
    exit 1
}
kill "$qad_pid" 2>/dev/null || true
wait "$qad_pid" 2>/dev/null || true

# --- 3. traced workload replay + offline qa-trace analysis ---
./target/release/qa-ctl run \
    --config "$workdir/fed.json" \
    --qad ./target/release/qad \
    --trace "$workdir/driver.jsonl" \
    > "$workdir/report.json"

./target/release/qa_trace summary "$workdir/driver.jsonl" --json \
    > "$workdir/trace_summary.json"
grep -q '"query_completed"' "$workdir/trace_summary.json" || {
    echo "metrics-smoke: driver trace has no completed queries" >&2
    cat "$workdir/trace_summary.json" >&2
    exit 1
}
./target/release/qa_trace spans "$workdir/driver.jsonl" > "$workdir/spans.txt"
grep -q "assigned→completed" "$workdir/spans.txt"

# `filter` emits canonical JSONL: it must feed back into the analyzer.
./target/release/qa_trace filter "$workdir/driver.jsonl" --kind query_assigned \
    > "$workdir/assigned.jsonl"
./target/release/qa_trace summary "$workdir/assigned.jsonl" > /dev/null

echo "metrics-smoke: OK ($workdir)"
