#!/bin/sh
# Pins the performance baseline: builds the release bench bins, then runs
# `perf_baseline`, which times every sweep-shaped bin (QA_THREADS=1 vs the
# full thread budget) plus the micro-bench suite and writes
# bench_results/perf_baseline.json. With a pinned reference committed at
# bench_results/pinned/perf_baseline.json, `--check` diffs the current
# micro suite against it and fails on any >3x regression.
#
# Usage:
#   scripts/bench_baseline.sh            # honours QA_SCALE / QA_BENCH_SECONDS
#   scripts/bench_baseline.sh --quick    # CI smoke: ci scale, 0.05s/case micro budget
#   scripts/bench_baseline.sh --check    # gate against the committed pinned baseline
set -eu
cd "$(dirname "$0")/.."

PINNED=bench_results/pinned/perf_baseline.json

# Generated bench_results/*.json must never be committed: only the pinned
# reference under bench_results/pinned/ is tracked. A tracked generated
# artifact would silently shadow fresh runs in diffs and re-pin noise, so
# refuse to run until it is removed from the index.
TRACKED_GENERATED=$(git ls-files 'bench_results/*.json' | grep -v '^bench_results/pinned/' || true)
if [ -n "$TRACKED_GENERATED" ]; then
  echo "error: generated bench artifacts are tracked by git:" >&2
  echo "$TRACKED_GENERATED" | sed 's/^/  /' >&2
  echo "remove them (git rm --cached <file>) — only bench_results/pinned/ is committed" >&2
  exit 1
fi

case "${1:-}" in
  --quick)
    export QA_SCALE=ci
    export QA_BENCH_SECONDS=0.05
    ;;
  --check)
    # A longer per-case budget than --quick: the check statistic is the
    # per-batch minimum, and a few extra batches keep runner noise from
    # tripping the (already loose) 3x tolerance.
    export QA_SCALE=ci
    export QA_BENCH_SECONDS="${QA_BENCH_SECONDS:-0.2}"
    cargo build --release -p qa-bench
    exec ./target/release/perf_baseline --check-against "$PINNED"
    ;;
  *)
    export QA_SCALE="${QA_SCALE:-ci}"
    export QA_BENCH_SECONDS="${QA_BENCH_SECONDS:-1}"
    ;;
esac

cargo build --release -p qa-bench
./target/release/perf_baseline
