#!/bin/sh
# Pins the performance baseline: builds the release bench bins, then runs
# `perf_baseline`, which times every sweep-shaped bin (QA_THREADS=1 vs the
# full thread budget) plus the micro-bench suite and writes
# bench_results/perf_baseline.json.
#
# Usage:
#   scripts/bench_baseline.sh            # honours QA_SCALE / QA_BENCH_SECONDS
#   scripts/bench_baseline.sh --quick    # CI smoke: ci scale, 0.05s/case micro budget
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--quick" ]; then
  export QA_SCALE=ci
  export QA_BENCH_SECONDS=0.05
else
  export QA_SCALE="${QA_SCALE:-ci}"
  export QA_BENCH_SECONDS="${QA_BENCH_SECONDS:-1}"
fi

cargo build --release -p qa-bench
./target/release/perf_baseline
