#!/usr/bin/env sh
# Golden-trace replay gate: re-run the simulator's golden spec and
# require the emitted JSONL to be byte-for-byte identical to the
# checked-in golden (goldens/trace_seed2007.jsonl). Any behavioural
# drift — a perturbed pricer constant, a reordered reduction, an
# off-by-one in the period loop — fails here with a pointed report
# naming the first diverging event.
#
# Usage: scripts/check_golden.sh [--bless]
# --bless regenerates the golden in place; commit the diff together
# with the behaviour change that caused it.
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--bless" ]; then
    cargo run -q --release -p qa-bench --bin check_golden -- --bless
else
    cargo run -q --release -p qa-bench --bin check_golden
fi
