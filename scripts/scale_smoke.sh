#!/usr/bin/env sh
# CI smoke of the sharded federation engine's scaling sweep:
#
#   1. build and run `fig_scale --quick` (small sizes, seconds not
#      minutes) at QA_THREADS=1 and QA_THREADS=8 and require the
#      timing-free determinism artifact to be byte-identical — the
#      sharded engine's output must not depend on how the shard and
#      solver layers share the machine;
#   2. diff the S=1 rows of the artifact against a flat-engine rerun via
#      the library test (`sharded_single_shard_is_byte_identical_to_flat
#      _engine`), covered by the determinism suite the perf-smoke job
#      runs — here we only re-check artifact stability across shard
#      layouts, which `--quick` sweeps (S=1 vs S=4/S=8) in one run.
#
# The timed artifact (bench_results/fig_scale.json) is left in place for
# upload; the determinism artifact is the compared one.
set -eu
cd "$(dirname "$0")/.."

cargo build --release -q -p qa-bench --bin fig_scale

echo "scale-smoke: fig_scale --quick at QA_THREADS=1"
QA_THREADS=1 ./target/release/fig_scale --quick
cp bench_results/fig_scale_determinism.json bench_results/fig_scale_determinism.t1.json

echo "scale-smoke: fig_scale --quick at QA_THREADS=8"
QA_THREADS=8 ./target/release/fig_scale --quick

if ! cmp -s bench_results/fig_scale_determinism.json bench_results/fig_scale_determinism.t1.json; then
  echo "scale-smoke: FAIL — determinism artifact differs between QA_THREADS=1 and 8" >&2
  diff bench_results/fig_scale_determinism.t1.json bench_results/fig_scale_determinism.json >&2 || true
  exit 1
fi
rm -f bench_results/fig_scale_determinism.t1.json
echo "scale-smoke: determinism artifact byte-identical across thread budgets"
