#!/usr/bin/env sh
# End-to-end smoke of the multi-process federation: build the real bins,
# spawn 5 `qad` servers on loopback ephemeral ports via `qa-ctl run`,
# replay the seeded workload over TCP, then hold every emitted JSONL
# trace to the strict telemetry contract (canonical re-dump, monotone
# clocks) with the transport-specific required-event lists:
#
#   * driver trace  — one peer_connected + handshake_completed per node,
#     plus the full query lifecycle (assigned, completed, periods);
#   * node traces   — the driver's inbound handshake plus the market's
#     supply computation.
#
# Usage: scripts/net_smoke.sh [workdir]
# The workdir (default: a fresh mktemp dir) keeps the config and traces
# for post-mortem; it is left in place on failure.
set -eu

cd "$(dirname "$0")/.."

workdir="${1:-$(mktemp -d "${TMPDIR:-/tmp}/qa-net-smoke.XXXXXX")}"
mkdir -p "$workdir"
echo "net-smoke: workdir $workdir"

cargo build --release -q --bin qad --bin qa-ctl
cargo build --release -q -p qa-bench --bin check_trace

./target/release/qa-ctl init > "$workdir/fed.json"

./target/release/qa-ctl run \
    --config "$workdir/fed.json" \
    --qad ./target/release/qad \
    --trace "$workdir/driver.jsonl" \
    --trace-dir "$workdir/traces" \
    > "$workdir/report.json"

grep -q '"clean_shutdown": true' "$workdir/report.json" || {
    echo "net-smoke: federation did not shut down cleanly" >&2
    cat "$workdir/report.json" >&2
    exit 1
}

./target/release/check_trace "$workdir/driver.jsonl" \
    --require peer_connected,handshake_completed,query_assigned,query_completed,period_started

for node_trace in "$workdir"/traces/node*.jsonl; do
    ./target/release/check_trace "$node_trace" \
        --require peer_connected,handshake_completed,supply_computed
done

echo "net-smoke: OK ($workdir)"
