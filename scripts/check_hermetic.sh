#!/usr/bin/env sh
# Guard the hermetic build: every dependency in every Cargo.toml must be an
# in-tree path/workspace dependency. Fails (exit 1) listing any line inside a
# [*dependencies*] section that is not a `path = ...` / `workspace = true`
# entry, i.e. anything that would pull from a registry or git.
set -eu

cd "$(dirname "$0")/.."

status=0
for manifest in $(find . -name Cargo.toml -not -path './target/*' | sort); do
    bad=$(awk '
        /^\[/ { in_dep = ($0 ~ /dependencies/) }
        in_dep && !/^\[/ && !/^[ \t]*(#|$)/ \
            && !/path[ \t]*=/ && !/workspace[ \t]*=[ \t]*true/ {
            printf "%d: %s\n", NR, $0
        }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "non-path dependency in $manifest:" >&2
        echo "$bad" >&2
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "External dependencies are not allowed; use in-tree qa-* crates." >&2
fi
exit "$status"
