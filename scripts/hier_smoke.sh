#!/usr/bin/env sh
# CI smoke of the hierarchical two-tier market:
#
#   1. build and run `fig_hier --quick --trace` (small sizes, seconds not
#      minutes) at QA_THREADS=1 and QA_THREADS=8 and require both the
#      timing-free determinism artifact and the broker telemetry trace to
#      be byte-identical — broker clearing is boundary-serial, so neither
#      may depend on how the shard and solver layers share the machine;
#   2. hold the broker trace to the strict telemetry contract
#      (check_trace: canonical re-dump, monotone clocks) and require the
#      broker-tier event taxonomy to actually appear.
#
# The timed artifact (bench_results/fig_hier.json) is left in place for
# upload; the determinism artifact and the trace are the compared ones.
set -eu
cd "$(dirname "$0")/.."

cargo build --release -q -p qa-bench --bin fig_hier --bin check_trace

echo "hier-smoke: fig_hier --quick --trace at QA_THREADS=1"
QA_THREADS=1 ./target/release/fig_hier --quick --trace
cp bench_results/fig_hier_determinism.json bench_results/fig_hier_determinism.t1.json
cp bench_results/fig_hier_trace.jsonl bench_results/fig_hier_trace.t1.jsonl

echo "hier-smoke: fig_hier --quick --trace at QA_THREADS=8"
QA_THREADS=8 ./target/release/fig_hier --quick --trace

if ! cmp -s bench_results/fig_hier_determinism.json bench_results/fig_hier_determinism.t1.json; then
  echo "hier-smoke: FAIL — determinism artifact differs between QA_THREADS=1 and 8" >&2
  diff bench_results/fig_hier_determinism.t1.json bench_results/fig_hier_determinism.json >&2 || true
  exit 1
fi
if ! cmp -s bench_results/fig_hier_trace.jsonl bench_results/fig_hier_trace.t1.jsonl; then
  echo "hier-smoke: FAIL — broker trace differs between QA_THREADS=1 and 8" >&2
  exit 1
fi
rm -f bench_results/fig_hier_determinism.t1.json bench_results/fig_hier_trace.t1.jsonl
echo "hier-smoke: artifacts byte-identical across thread budgets"

./target/release/check_trace bench_results/fig_hier_trace.jsonl \
  --require broker_bid,parent_cleared,demand_escalated
echo "hier-smoke: broker trace passes the strict telemetry contract"
